#include "measure/traceroute.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace spooftrack::measure {
namespace {

class TracerouteTest : public ::testing::Test {
 protected:
  TracerouteTest()
      : graph_(test::small_topology()),
        policy_(graph_, test::clean_policy_config()),
        engine_(graph_, policy_),
        origin_(test::small_origin()),
        plan_(graph_),
        ixps_(graph_, 2, 1.0, 5) {}

  TracerouteOptions quiet_options() const {
    TracerouteOptions options;
    options.hop_unresponsive_prob = 0.0;
    options.as_silent_prob = 0.0;
    options.border_foreign_addr_prob = 0.0;
    options.extra_internal_hops = 0.0;
    return options;
  }

  topology::AsId id(topology::Asn asn) const { return *graph_.id_of(asn); }

  topology::AsGraph graph_;
  bgp::RoutingPolicy policy_;
  bgp::Engine engine_;
  bgp::OriginSpec origin_;
  AddressPlan plan_;
  IxpTable ixps_;
};

TEST_F(TracerouteTest, CleanTraceReachesTarget) {
  const TracerouteSim sim(graph_, plan_, ixps_, quiet_options());
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto trace = sim.run(outcome, id(test::kC), id(test::kOrigin), 0);
  EXPECT_TRUE(trace.reached);
  ASSERT_FALSE(trace.hops.empty());
  // Final hop answers from the experiment target.
  EXPECT_EQ(trace.hops.back().address, AddressPlan::experiment_target());
  // All hops responsive under the quiet options.
  for (const auto& hop : trace.hops) EXPECT_TRUE(hop.responsive());
}

TEST_F(TracerouteTest, HopAddressesMapToOnPathAses) {
  const TracerouteSim sim(graph_, plan_, ixps_, quiet_options());
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  // c -> t1 -> p1 -> origin.
  const auto trace = sim.run(outcome, id(test::kC), id(test::kOrigin), 0);
  std::vector<topology::AsId> on_path = {id(test::kC), id(test::kT1),
                                         id(test::kP1)};
  for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
    const auto addr = *trace.hops[i].address;
    bool found = false;
    for (topology::AsId as : on_path) {
      if (plan_.prefix_of(as).contains(addr)) found = true;
    }
    EXPECT_TRUE(found) << "hop " << i << " at " << addr.to_string();
  }
}

TEST_F(TracerouteTest, NoRouteTraceDiesInProbeAs) {
  const TracerouteSim sim(graph_, plan_, ixps_, quiet_options());
  // Announce nothing reachable for the probe: impossible here, so use an
  // outcome with no announcements at all by routing an empty-link config.
  bgp::Configuration config;
  config.announcements.push_back({0, 0, {}, {}});
  auto outcome = engine_.run(origin_, config);
  // Manually invalidate the probe's route to emulate loss of reachability.
  outcome.best[id(test::kB)] = bgp::Route{};
  outcome.next_hop[id(test::kB)] = topology::kInvalidAsId;
  const auto trace = sim.run(outcome, id(test::kB), id(test::kOrigin), 0);
  EXPECT_FALSE(trace.reached);
  EXPECT_EQ(trace.hops.size(), 1u);  // only the probe's own gateway
}

TEST_F(TracerouteTest, ForeignBorderNumbering) {
  TracerouteOptions options = quiet_options();
  options.border_foreign_addr_prob = 1.0;  // every border is mis-numbered
  const TracerouteSim sim(graph_, plan_, ixps_, options);
  bgp::Configuration config;
  config.announcements.push_back({0, 0, {}, {}});
  const auto outcome = engine_.run(origin_, config);
  // b -> p2 -> t2 -> t1 -> p1 -> origin; the t2--t1 peering is on an IXP
  // (edge_fraction = 1), so that ingress shows an IXP address; other
  // borders show the previous AS's space.
  const auto trace = sim.run(outcome, id(test::kB), id(test::kOrigin), 0);
  ASSERT_TRUE(trace.reached);
  bool saw_foreign = false;
  bool saw_ixp = false;
  for (const auto& hop : trace.hops) {
    if (!hop.responsive()) continue;
    if (ixps_.is_ixp_address(*hop.address)) saw_ixp = true;
  }
  // Ingress of p2 facing b's side... verify at least the p1 ingress facing
  // t1 is numbered out of t1's space.
  for (const auto& hop : trace.hops) {
    if (hop.responsive() &&
        plan_.prefix_of(id(test::kT1)).contains(*hop.address)) {
      saw_foreign = true;  // could be t1's own router or p1's mis-numbered
    }
  }
  EXPECT_TRUE(saw_foreign);
  EXPECT_TRUE(saw_ixp);
}

TEST_F(TracerouteTest, SilentAsNeverResponds) {
  TracerouteOptions options = quiet_options();
  options.as_silent_prob = 1.0;  // every AS silent
  const TracerouteSim sim(graph_, plan_, ixps_, options);
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto trace = sim.run(outcome, id(test::kC), id(test::kOrigin), 0);
  // All intermediate hops unresponsive; only the destination target (which
  // is not an AS hop) may answer.
  for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
    EXPECT_FALSE(trace.hops[i].responsive());
  }
}

TEST_F(TracerouteTest, TransientLossVariesWithSalt) {
  TracerouteOptions options = quiet_options();
  options.hop_unresponsive_prob = 0.5;
  const TracerouteSim sim(graph_, plan_, ixps_, options);
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto t1 = sim.run(outcome, id(test::kC), id(test::kOrigin), 1);
  const auto t2 = sim.run(outcome, id(test::kC), id(test::kOrigin), 2);
  // Same path, same hop count.
  EXPECT_EQ(t1.hops.size(), t2.hops.size());
  // Loss pattern should differ between salts (probabilistically certain
  // for a 6-hop trace at p=0.5; seeds fixed, so deterministic here).
  bool differs = false;
  for (std::size_t i = 0; i < t1.hops.size(); ++i) {
    if (t1.hops[i].responsive() != t2.hops[i].responsive()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST_F(TracerouteTest, DeterministicForSameSalt) {
  TracerouteOptions options = quiet_options();
  options.hop_unresponsive_prob = 0.3;
  const TracerouteSim sim(graph_, plan_, ixps_, options);
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto t1 = sim.run(outcome, id(test::kA), id(test::kOrigin), 7);
  const auto t2 = sim.run(outcome, id(test::kA), id(test::kOrigin), 7);
  ASSERT_EQ(t1.hops.size(), t2.hops.size());
  for (std::size_t i = 0; i < t1.hops.size(); ++i) {
    EXPECT_EQ(t1.hops[i].address, t2.hops[i].address);
  }
}

}  // namespace
}  // namespace spooftrack::measure
