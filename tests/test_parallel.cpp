#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace spooftrack::util {
namespace {

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleWorkerFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100,
                   [&](std::size_t i) {
                     if (i == 42) throw std::runtime_error("boom");
                   },
                   4),
      std::runtime_error);
}

TEST(ParallelFor, ResultsMatchSequential) {
  std::vector<std::uint64_t> out(500);
  parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelFor, DefaultWorkerCountPositive) {
  EXPECT_GE(default_worker_count(), 1u);
}

}  // namespace
}  // namespace spooftrack::util
