#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace spooftrack::util {
namespace {

/// Saves and restores SPOOFTRACK_THREADS around a test.
class ThreadsEnvGuard {
 public:
  ThreadsEnvGuard() {
    if (const char* value = std::getenv(kName)) {
      saved_ = value;
      had_value_ = true;
    }
  }
  ~ThreadsEnvGuard() {
    if (had_value_) {
      ::setenv(kName, saved_.c_str(), 1);
    } else {
      ::unsetenv(kName);
    }
  }
  static void set(const char* value) { ::setenv(kName, value, 1); }
  static void clear() { ::unsetenv(kName); }

 private:
  static constexpr const char* kName = "SPOOFTRACK_THREADS";
  std::string saved_;
  bool had_value_ = false;
};

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleWorkerFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100,
                   [&](std::size_t i) {
                     if (i == 42) throw std::runtime_error("boom");
                   },
                   4),
      std::runtime_error);
}

TEST(ParallelFor, ResultsMatchSequential) {
  std::vector<std::uint64_t> out(500);
  parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelFor, DefaultWorkerCountPositive) {
  EXPECT_GE(default_worker_count(), 1u);
}

TEST(ParallelFor, ThreadsEnvHonoursCleanPositiveInteger) {
  ThreadsEnvGuard guard;
  ThreadsEnvGuard::set("8");
  EXPECT_EQ(default_worker_count(), 8u);
  ThreadsEnvGuard::set("1");
  EXPECT_EQ(default_worker_count(), 1u);
}

TEST(ParallelFor, ThreadsEnvRejectsGarbageAndOutOfRange) {
  ThreadsEnvGuard guard;
  ThreadsEnvGuard::clear();
  const std::size_t fallback = default_worker_count();
  for (const char* bad :
       {"8abc", "abc", "", " ", "-3", "0", "4.5", "0x10",
        "999999999999999999999999999", "9999999999", "1000000"}) {
    ThreadsEnvGuard::set(bad);
    EXPECT_EQ(default_worker_count(), fallback) << "value: '" << bad << "'";
  }
}

TEST(ParallelFor, StopsClaimingNewWorkAfterException) {
  // Regression: termination is signalled through a dedicated stop flag, not
  // by storing a sentinel into the work index where concurrent fetch_adds
  // race with it. After one task throws, peers may finish tasks already
  // claimed but must not keep draining the remaining iterations.
  const std::size_t count = 100000;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      parallel_for(
          count,
          [&](std::size_t i) {
            if (i == 0) throw std::runtime_error("boom");
            executed.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          },
          8),
      std::runtime_error);
  EXPECT_LT(executed.load(), count / 10);
}

TEST(ParallelFor, ConcurrentThrowersReportFirstErrorAndTerminate) {
  // Every task throws from every worker at once: exactly one exception
  // must surface and the call must terminate (no deadlock, no crash).
  EXPECT_THROW(
      parallel_for(
          64, [](std::size_t i) { throw std::domain_error(std::to_string(i)); },
          8),
      std::domain_error);
}

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.threads(), 3u);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, ReusableAcrossManyBatches) {
  // The engine dispatches one batch per Jacobi round; the pool must not
  // leak generations or wedge across hundreds of small batches.
  WorkerPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 500; ++batch) {
    pool.run(7, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500u * 7u);
}

TEST(WorkerPool, ZeroThreadsRunsOnCaller) {
  WorkerPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(16);
  pool.run(ran.size(),
           [&](std::size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(WorkerPool, ZeroTasksIsNoop) {
  WorkerPool pool(2);
  bool called = false;
  pool.run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(WorkerPool, CallerParticipates) {
  // A single-task batch runs on the caller even with threads available
  // (the serial shortcut), and larger batches never lose tasks when the
  // caller drains alongside the pool.
  WorkerPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran;
  pool.run(1, [&](std::size_t) { ran = std::this_thread::get_id(); });
  EXPECT_EQ(ran, caller);
}

TEST(WorkerPool, PropagatesFirstException) {
  WorkerPool pool(4);
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(pool.run(64,
                        [&](std::size_t i) {
                          if (i % 2 == 0) {
                            throw std::runtime_error("boom " +
                                                     std::to_string(i));
                          }
                          executed.fetch_add(1);
                        }),
               std::runtime_error);
  // The pool survives a throwing batch and runs the next one cleanly.
  std::atomic<std::size_t> after{0};
  pool.run(32, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 32u);
}

TEST(WorkerPool, OrderedOutputSlotsAreDeterministic) {
  // The engine's determinism contract: each task writes only its own slot,
  // so the assembled output is identical for any thread count.
  std::vector<std::uint64_t> expected(512);
  for (std::size_t i = 0; i < expected.size(); ++i) expected[i] = i * i + 1;
  for (std::size_t threads : {0u, 1u, 3u, 7u}) {
    WorkerPool pool(threads);
    std::vector<std::uint64_t> out(expected.size(), 0);
    pool.run(out.size(), [&](std::size_t i) { out[i] = i * i + 1; });
    EXPECT_EQ(out, expected) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace spooftrack::util
