#include "traffic/valid_source.hpp"

#include <gtest/gtest.h>

namespace spooftrack::traffic {
namespace {

const netcore::Ipv4Addr kHostA{20, 0, 0, 17};     // prefix 20.0.0.0/20
const netcore::Ipv4Addr kHostA2{20, 0, 15, 200};  // same /20
const netcore::Ipv4Addr kHostB{20, 0, 16, 1};     // next /20
const netcore::Ipv4Addr kUnseen{198, 51, 100, 1};

TEST(ValidSource, UnknownPrefixIsSpoofed) {
  ValidSourceInference inference;
  EXPECT_EQ(inference.classify(0, kUnseen),
            SourceVerdict::kSpoofedUnknownSource);
}

TEST(ValidSource, LearnedPrefixOnSameLinkIsLegit) {
  ValidSourceInference inference;
  inference.learn(2, kHostA);
  EXPECT_EQ(inference.classify(2, kHostA), SourceVerdict::kLegitimate);
  // Any host in the same /20 inherits the verdict.
  EXPECT_EQ(inference.classify(2, kHostA2), SourceVerdict::kLegitimate);
}

TEST(ValidSource, WrongLinkIsSpoofed) {
  ValidSourceInference inference;
  inference.learn(2, kHostA);
  EXPECT_EQ(inference.classify(0, kHostA),
            SourceVerdict::kSpoofedWrongLink);
}

TEST(ValidSource, AdjacentPrefixNotConfused) {
  ValidSourceInference inference;
  inference.learn(1, kHostA);
  EXPECT_EQ(inference.classify(1, kHostB),
            SourceVerdict::kSpoofedUnknownSource);
}

TEST(ValidSource, MultipleLinksAllowed) {
  // Multi-homed legitimate sources may legitimately appear on two links.
  ValidSourceInference inference;
  inference.learn(0, kHostA);
  inference.learn(3, kHostA);
  EXPECT_EQ(inference.classify(0, kHostA), SourceVerdict::kLegitimate);
  EXPECT_EQ(inference.classify(3, kHostA), SourceVerdict::kLegitimate);
  EXPECT_EQ(inference.classify(1, kHostA),
            SourceVerdict::kSpoofedWrongLink);
}

TEST(ValidSource, PrefixGranularityConfigurable) {
  ValidSourceInference wide(8);  // /8 granularity
  wide.learn(0, kHostA);
  EXPECT_EQ(wide.classify(0, kHostB), SourceVerdict::kLegitimate);
  EXPECT_EQ(wide.known_prefixes(), 1u);
}

TEST(ValidSource, VerdictNames) {
  EXPECT_STREQ(to_string(SourceVerdict::kLegitimate), "legitimate");
  EXPECT_STREQ(to_string(SourceVerdict::kSpoofedWrongLink),
               "spoofed-wrong-link");
  EXPECT_STREQ(to_string(SourceVerdict::kSpoofedUnknownSource),
               "spoofed-unknown-source");
}

}  // namespace
}  // namespace spooftrack::traffic
