#include "netcore/prefix.hpp"

#include <gtest/gtest.h>

namespace spooftrack::netcore {
namespace {

TEST(Ipv4Prefix, CanonicalisesHostBits) {
  const auto p = Ipv4Prefix::make(Ipv4Addr(10, 1, 2, 3), 16);
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
  EXPECT_EQ(p.length(), 16);
}

TEST(Ipv4Prefix, ParsesCidrAndBareAddress) {
  const auto p = Ipv4Prefix::parse("184.164.224.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 24);
  const auto host = Ipv4Prefix::parse("8.8.8.8");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->length(), 32);
}

TEST(Ipv4Prefix, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Prefix::parse("1.2.3.4/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("1.2.3.4/").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("1.2.3/8").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("1.2.3.4/-1").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("/8").has_value());
}

TEST(Ipv4Prefix, ContainsAddresses) {
  const auto p = *Ipv4Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 255, 1, 2)));
  EXPECT_FALSE(p.contains(Ipv4Addr(11, 0, 0, 0)));
}

TEST(Ipv4Prefix, ContainsSubPrefixes) {
  const auto big = *Ipv4Prefix::parse("10.0.0.0/8");
  const auto small = *Ipv4Prefix::parse("10.1.0.0/16");
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(Ipv4Prefix, SizeAndNth) {
  const auto p = *Ipv4Prefix::parse("192.0.2.0/24");
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.nth(0).to_string(), "192.0.2.0");
  EXPECT_EQ(p.nth(255).to_string(), "192.0.2.255");
  EXPECT_EQ(p.nth(256).to_string(), "192.0.2.0");  // wraps modulo size
}

TEST(Ipv4Prefix, ZeroLengthCoversEverything) {
  const auto all = Ipv4Prefix::make(Ipv4Addr{0}, 0);
  EXPECT_TRUE(all.contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_TRUE(all.contains(Ipv4Addr{0}));
}

class PrefixLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefixLengthSweep, MaskMatchesLength) {
  const auto len = static_cast<std::uint8_t>(GetParam());
  const auto p = Ipv4Prefix::make(Ipv4Addr(203, 0, 113, 7), len);
  // The base must survive masking, and the prefix must contain its base.
  EXPECT_EQ(p.base().value() & ~p.netmask(), 0u);
  EXPECT_TRUE(p.contains(p.base()));
  EXPECT_EQ(p.size(), std::uint64_t{1} << (32 - len));
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixLengthSweep,
                         ::testing::Range(0, 33));

}  // namespace
}  // namespace spooftrack::netcore
