#include "measure/feed.hpp"

#include <gtest/gtest.h>

#include "bgp/catchment.hpp"
#include "helpers.hpp"

namespace spooftrack::measure {
namespace {

class FeedTest : public ::testing::Test {
 protected:
  FeedTest()
      : graph_(test::small_topology()),
        policy_(graph_, test::clean_policy_config()),
        engine_(graph_, policy_),
        origin_(test::small_origin()) {}

  topology::AsGraph graph_;
  bgp::RoutingPolicy policy_;
  bgp::Engine engine_;
  bgp::OriginSpec origin_;
};

TEST_F(FeedTest, PeerCountRespected) {
  FeedOptions options;
  options.peer_count = 4;
  const FeedSimulator sim(graph_, options);
  EXPECT_EQ(sim.peers().size(), 4u);
}

TEST_F(FeedTest, PeerCountCappedAtGraphSize) {
  FeedOptions options;
  options.peer_count = 1000;
  const FeedSimulator sim(graph_, options);
  EXPECT_EQ(sim.peers().size(), graph_.size());
}

TEST_F(FeedTest, LargeConeBiasPicksTransit) {
  FeedOptions options;
  options.peer_count = 2;
  options.large_cone_bias = 1.0;
  const FeedSimulator sim(graph_, options);
  // The two largest cones in the fixture are t1 and t2.
  std::vector<topology::Asn> asns;
  for (topology::AsId id : sim.peers()) asns.push_back(graph_.asn_of(id));
  std::sort(asns.begin(), asns.end());
  EXPECT_EQ(asns, (std::vector<topology::Asn>{test::kT1, test::kT2}));
}

TEST_F(FeedTest, EntriesExportFullPaths) {
  FeedOptions options;
  options.peer_count = 1000;  // everyone peers with the collector
  const FeedSimulator sim(graph_, options);
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto entries = sim.collect(outcome);
  // Everyone except the (routeless) origin contributes an entry.
  EXPECT_EQ(entries.size(), graph_.size() - 1);
  for (const auto& entry : entries) {
    ASSERT_GE(entry.as_path.size(), 2u);
    EXPECT_EQ(entry.as_path.front(), graph_.asn_of(entry.peer));
    EXPECT_EQ(entry.as_path.back(), origin_.asn);
  }
}

TEST_F(FeedTest, PrependVisibleInFeed) {
  FeedOptions options;
  options.peer_count = 1000;
  const FeedSimulator sim(graph_, options);
  bgp::Configuration config;
  config.announcements.push_back({0, 4, {}});
  const auto outcome = engine_.run(origin_, config);
  const auto entries = sim.collect(outcome);
  // p1's entry shows the origin prepended five times.
  for (const auto& entry : entries) {
    if (graph_.asn_of(entry.peer) == test::kP1) {
      EXPECT_EQ(entry.as_path,
                (std::vector<topology::Asn>{test::kP1, origin_.asn,
                                            origin_.asn, origin_.asn,
                                            origin_.asn, origin_.asn}));
    }
  }
}

TEST_F(FeedTest, DeterministicPeerSelection) {
  FeedOptions options;
  options.peer_count = 5;
  options.seed = 77;
  const FeedSimulator a(graph_, options);
  const FeedSimulator b(graph_, options);
  EXPECT_EQ(a.peers(), b.peers());
}

}  // namespace
}  // namespace spooftrack::measure
