// Warm-start incremental propagation: the equivalence guarantee
// (Engine::run_warm produces bit-identical best routes, next hops and
// announcement ids to a cold Engine::run) exercised over randomized
// configuration pairs on a >= 1000-AS synthetic topology, plus the
// campaign runner built on top of it (memoization, similarity ordering,
// warm-start chains).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "bgp/catchment.hpp"
#include "bgp/engine.hpp"
#include "bgp/policy.hpp"
#include "core/campaign.hpp"
#include "core/config_gen.hpp"
#include "topology/synth.hpp"
#include "util/rng.hpp"

namespace spooftrack {
namespace {

constexpr topology::Asn kOriginAsn = 47065;
constexpr std::uint32_t kLinkCount = 7;

/// A >= 1000-AS synthetic Internet with a 7-link origin, shared across the
/// tests in this file (propagation state lives on the stack, so sharing
/// the immutable graph/policy/engine is safe).
struct WarmWorld {
  topology::SynthTopology topo;
  bgp::OriginSpec origin;
  bgp::RoutingPolicy policy;
  bgp::Engine engine;

  WarmWorld()
      : topo(make_topology()),
        origin(make_origin()),
        policy(topo.graph, make_policy()),
        engine(topo.graph, policy) {}

  static topology::SynthTopology make_topology() {
    topology::SynthConfig synth;
    synth.seed = 20260805;
    synth.tier1_count = 8;
    synth.transit_count = 120;
    synth.stub_count = 900;  // total >= 1028 ASes
    synth.origin_asn = kOriginAsn;
    for (std::uint32_t l = 0; l < kLinkCount; ++l) {
      synth.reserved_transit_asns.push_back(60000 + l);
    }
    return topology::synthesize(synth);
  }

  static bgp::OriginSpec make_origin() {
    bgp::OriginSpec origin;
    origin.asn = kOriginAsn;
    for (std::uint32_t l = 0; l < kLinkCount; ++l) {
      origin.links.push_back({l, "pop-" + std::to_string(l), 60000 + l});
    }
    return origin;
  }

  static bgp::PolicyConfig make_policy() {
    // Default fractions: keep the Figure 9 policy violators in play so the
    // equivalence test covers non-canonical preference orders too.
    return bgp::PolicyConfig{};
  }
};

const WarmWorld& world() {
  static const WarmWorld w;
  return w;
}

/// A random but valid configuration: random link subset, prepends, poisons
/// and no-export targets (announcement ids permute as the subset changes,
/// stressing the warm-start ann-id remapping).
bgp::Configuration random_config(util::Rng& rng) {
  const WarmWorld& w = world();
  const auto random_target = [&]() -> topology::Asn {
    for (;;) {
      const auto id = static_cast<topology::AsId>(
          rng.next_below(w.topo.graph.size()));
      const topology::Asn asn = w.topo.graph.asn_of(id);
      if (asn != kOriginAsn) return asn;
    }
  };

  bgp::Configuration config;
  config.label = "random";
  for (std::uint32_t l = 0; l < kLinkCount; ++l) {
    if (rng.uniform01() < 0.35) continue;  // link withdrawn
    bgp::AnnouncementSpec spec{l, 0, {}, {}};
    if (rng.uniform01() < 0.3) {
      spec.prepend = static_cast<std::uint32_t>(rng.next_below(5));
    }
    if (rng.uniform01() < 0.3) {
      const std::size_t poisons = 1 + rng.next_below(2);
      for (std::size_t p = 0; p < poisons; ++p) {
        spec.poisoned.push_back(random_target());
      }
    }
    if (rng.uniform01() < 0.3) {
      const std::size_t targets = 1 + rng.next_below(3);
      for (std::size_t t = 0; t < targets; ++t) {
        spec.no_export_to.push_back(random_target());
      }
    }
    config.announcements.push_back(std::move(spec));
  }
  if (config.announcements.empty()) {
    config.announcements.push_back(
        {static_cast<bgp::LinkId>(rng.next_below(kLinkCount)), 0, {}, {}});
  }
  return config;
}

/// Counts ASes whose (best route, next hop) differ between two outcomes.
/// Route equality includes the announcement id, AS-path, local-pref and
/// learned-from relationship — compared by content via routes_equal, since
/// the outcomes come from different propagations and hence different
/// arenas.
std::size_t mismatch_count(const bgp::RoutingOutcome& a,
                           const bgp::RoutingOutcome& b) {
  EXPECT_EQ(a.best.size(), b.best.size());
  EXPECT_EQ(a.next_hop.size(), b.next_hop.size());
  std::size_t mismatches = 0;
  for (topology::AsId as = 0; as < a.best.size(); ++as) {
    if (!bgp::routes_equal(a, b, as)) ++mismatches;
  }
  return mismatches;
}

TEST(WarmStart, TopologyIsLargeEnough) {
  ASSERT_GE(world().topo.graph.size(), 1000u);
}

TEST(WarmStart, EquivalentToColdOverRandomizedPairs) {
  const WarmWorld& w = world();
  util::Rng rng{0xC0FFEE};

  // 51 consecutive pairs over 52 randomized configurations: warm-start
  // config k+1 from config k's cold outcome and compare against config
  // k+1's own cold outcome.
  constexpr std::size_t kConfigs = 52;
  std::vector<bgp::Configuration> configs;
  configs.reserve(kConfigs);
  for (std::size_t i = 0; i < kConfigs; ++i) {
    configs.push_back(random_config(rng));
  }

  bgp::RoutingOutcome baseline = w.engine.run(w.origin, configs[0]);
  ASSERT_TRUE(baseline.converged);
  std::size_t warm_total_rounds = 0;
  std::size_t cold_total_rounds = 0;
  for (std::size_t i = 1; i < kConfigs; ++i) {
    const bgp::RoutingOutcome cold = w.engine.run(w.origin, configs[i]);
    const bgp::RoutingOutcome warm =
        w.engine.run_warm(w.origin, configs[i], configs[i - 1], baseline);
    ASSERT_TRUE(cold.converged);
    ASSERT_TRUE(warm.converged);
    EXPECT_EQ(mismatch_count(cold, warm), 0u)
        << "pair " << i - 1 << " -> " << i;
    warm_total_rounds += warm.rounds;
    cold_total_rounds += cold.rounds;
    baseline = cold;
  }
  // The whole point: the warm ripples are much shallower than cold
  // re-convergence across the pair set.
  EXPECT_LT(warm_total_rounds, cold_total_rounds);
}

TEST(WarmStart, ChainedWarmStartsStayOnTheFixedPoint) {
  // Warm-from-warm must not drift: compare a fully chained warm run of 12
  // configurations against per-config cold runs.
  const WarmWorld& w = world();
  util::Rng rng{0xBEEF};
  bgp::RoutingOutcome prev;
  bgp::Configuration prev_config;
  for (std::size_t i = 0; i < 12; ++i) {
    const bgp::Configuration config = random_config(rng);
    const bgp::RoutingOutcome warm =
        i == 0 ? w.engine.run(w.origin, config)
               : w.engine.run_warm(w.origin, config, prev_config, prev);
    const bgp::RoutingOutcome cold = w.engine.run(w.origin, config);
    EXPECT_EQ(mismatch_count(cold, warm), 0u) << "chain step " << i;
    prev = warm;
    prev_config = config;
  }
}

TEST(WarmStart, IdenticalSeedTableShortCircuits) {
  const WarmWorld& w = world();
  util::Rng rng{0xABBA};
  const bgp::Configuration config = random_config(rng);
  const bgp::RoutingOutcome cold = w.engine.run(w.origin, config);

  bgp::Configuration relabeled = config;
  relabeled.label = "same announcements, different label";
  const bgp::RoutingOutcome warm =
      w.engine.run_warm(w.origin, relabeled, config, cold);
  EXPECT_EQ(warm.rounds, 0u);
  EXPECT_TRUE(warm.converged);
  EXPECT_EQ(mismatch_count(cold, warm), 0u);
}

TEST(WarmStart, NoExportOnlyDeltaRipples) {
  // The subtle delta: the provider's own best route does not change when
  // an announcement gains a no-export target, but its neighbors' candidate
  // filtering does. The warm start must activate them.
  const WarmWorld& w = world();
  bgp::Configuration base;
  for (std::uint32_t l = 0; l < kLinkCount; ++l) {
    base.announcements.push_back({l, 0, {}, {}});
  }
  const bgp::RoutingOutcome base_outcome = w.engine.run(w.origin, base);

  // Block a neighbor that actually routes via link 0's provider on the
  // link-0 announcement, so withholding the seed is guaranteed to move it.
  const auto provider_id = *w.topo.graph.id_of(w.origin.links[0].provider);
  topology::Asn blocked = 0;
  for (const topology::Neighbor& n : w.topo.graph.neighbors(provider_id)) {
    const topology::Asn asn = w.topo.graph.asn_of(n.id);
    if (asn != kOriginAsn && base_outcome.next_hop[n.id] == provider_id &&
        base_outcome.best[n.id].valid() && base_outcome.best[n.id].ann == 0) {
      blocked = asn;
      break;
    }
  }
  ASSERT_NE(blocked, 0u);

  bgp::Configuration steered = base;
  steered.announcements[0].no_export_to.push_back(blocked);
  const bgp::RoutingOutcome cold = w.engine.run(w.origin, steered);
  const bgp::RoutingOutcome warm =
      w.engine.run_warm(w.origin, steered, base, base_outcome);
  EXPECT_EQ(mismatch_count(cold, warm), 0u);
  // The steering had an effect (otherwise the test is vacuous).
  EXPECT_GT(mismatch_count(base_outcome, cold), 0u);
}

TEST(WarmStart, RejectsBadBaselines) {
  const WarmWorld& w = world();
  util::Rng rng{0xD1CE};
  const bgp::Configuration a = random_config(rng);
  const bgp::Configuration b = random_config(rng);
  bgp::RoutingOutcome outcome = w.engine.run(w.origin, a);

  bgp::RoutingOutcome unconverged = outcome;
  unconverged.converged = false;
  EXPECT_THROW(w.engine.run_warm(w.origin, b, a, unconverged),
               std::invalid_argument);

  bgp::RoutingOutcome wrong_size = outcome;
  wrong_size.best.pop_back();
  EXPECT_THROW(w.engine.run_warm(w.origin, b, a, wrong_size),
               std::invalid_argument);
}

TEST(SeedDistance, CountsChangedLinks) {
  bgp::Configuration a;
  a.announcements.push_back({0, 0, {}, {}});
  a.announcements.push_back({1, 0, {}, {}});

  EXPECT_EQ(core::seed_distance(a, a), 0u);

  bgp::Configuration relabeled = a;
  relabeled.label = "other";
  EXPECT_EQ(core::seed_distance(a, relabeled), 0u);

  bgp::Configuration prepended = a;
  prepended.announcements[1].prepend = 4;
  EXPECT_EQ(core::seed_distance(a, prepended), 1u);

  bgp::Configuration withdrawn;
  withdrawn.announcements.push_back({0, 0, {}, {}});
  EXPECT_EQ(core::seed_distance(a, withdrawn), 1u);

  // Same specs, permuted announcement ids: both links' seeds change.
  bgp::Configuration permuted;
  permuted.announcements.push_back({1, 0, {}, {}});
  permuted.announcements.push_back({0, 0, {}, {}});
  EXPECT_EQ(core::seed_distance(a, permuted), 2u);
}

TEST(OrderBySimilarity, ProducesAPermutation) {
  util::Rng rng{0xFACE};
  std::vector<bgp::Configuration> configs;
  for (std::size_t i = 0; i < 40; ++i) configs.push_back(random_config(rng));
  const auto order = core::order_by_similarity(configs);
  ASSERT_EQ(order.size(), configs.size());
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_EQ(order.front(), 0u);
}

TEST(PropagateCampaign, MatchesColdPropagation) {
  const WarmWorld& w = world();
  util::Rng rng{0x5EED};
  std::vector<bgp::Configuration> plan;
  for (std::size_t i = 0; i < 30; ++i) plan.push_back(random_config(rng));
  // Inject duplicates to exercise memoization.
  plan.push_back(plan[3]);
  plan.push_back(plan[7]);

  core::CampaignRunStats warm_stats;
  const auto warm = core::propagate_campaign_collect(
      w.engine, w.origin, plan, {}, &warm_stats);

  core::CampaignRunnerOptions cold_options;
  cold_options.warm_start = false;
  cold_options.memoize = false;
  cold_options.order_chains = false;
  core::CampaignRunStats cold_stats;
  const auto cold = core::propagate_campaign_collect(
      w.engine, w.origin, plan, cold_options, &cold_stats);

  ASSERT_EQ(warm.size(), plan.size());
  ASSERT_EQ(cold.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(mismatch_count(cold[i], warm[i]), 0u) << "config " << i;
    const auto warm_catchments = bgp::extract_catchments(warm[i], plan[i]);
    const auto cold_catchments = bgp::extract_catchments(cold[i], plan[i]);
    EXPECT_EQ(warm_catchments.link_of, cold_catchments.link_of);
  }

  EXPECT_EQ(warm_stats.configs, plan.size());
  EXPECT_EQ(warm_stats.unique_configs, 30u);
  EXPECT_EQ(warm_stats.memo_hits, 2u);
  EXPECT_GT(warm_stats.warm_runs, 0u);
  EXPECT_EQ(warm_stats.warm_runs + warm_stats.cold_runs, 30u);
  EXPECT_TRUE(warm_stats.ordered);

  EXPECT_EQ(cold_stats.cold_runs, plan.size());
  EXPECT_EQ(cold_stats.warm_runs, 0u);
  EXPECT_EQ(cold_stats.memo_hits, 0u);
  // Warm chains must do strictly less Jacobi work than cold-per-config.
  EXPECT_LT(warm_stats.total_rounds, cold_stats.total_rounds);
}

TEST(PropagateCampaign, SingleWorkerChainIsDeterministic) {
  const WarmWorld& w = world();
  util::Rng rng{0x0DDB};
  std::vector<bgp::Configuration> plan;
  for (std::size_t i = 0; i < 10; ++i) plan.push_back(random_config(rng));

  core::CampaignRunnerOptions serial;
  serial.workers = 1;
  const auto a = core::propagate_campaign_collect(w.engine, w.origin, plan,
                                                  serial);
  const auto b = core::propagate_campaign_collect(w.engine, w.origin, plan);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(mismatch_count(a[i], b[i]), 0u) << "config " << i;
  }
}

TEST(PropagateCampaign, PropagatesEngineErrors) {
  const WarmWorld& w = world();
  bgp::Configuration bad;
  bad.announcements.push_back({kLinkCount + 3, 0, {}, {}});  // no such link
  std::vector<bgp::Configuration> plan{bad};
  EXPECT_THROW(core::propagate_campaign_collect(w.engine, w.origin, plan),
               std::invalid_argument);
}

}  // namespace
}  // namespace spooftrack
