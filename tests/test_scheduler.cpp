#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/cluster.hpp"

namespace spooftrack::core {
namespace {

/// Matrix where config i splits sources by bit i: each config halves the
/// remaining clusters (8 sources, 3 perfectly informative configs).
measure::CatchmentMatrix bit_matrix() {
  measure::CatchmentMatrix matrix(3, std::vector<bgp::LinkId>(8));
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t s = 0; s < 8; ++s) {
      matrix[c][s] = static_cast<bgp::LinkId>((s >> c) & 1);
    }
  }
  return matrix;
}

/// Matrix with one informative config (index 2) and redundant ones.
measure::CatchmentMatrix skewed_matrix() {
  measure::CatchmentMatrix matrix;
  matrix.push_back({0, 0, 0, 0, 0, 0});      // useless
  matrix.push_back({0, 0, 0, 1, 1, 1});      // splits in half
  matrix.push_back({0, 1, 2, 3, 4, 5});      // fully separates
  matrix.push_back({0, 0, 0, 0, 0, 1});      // weak
  return matrix;
}

TEST(RandomSchedule, UsesEveryConfigOnce) {
  util::Rng rng{5};
  const auto matrix = bit_matrix();
  const auto trace = random_schedule(matrix, rng);
  ASSERT_EQ(trace.order.size(), 3u);
  auto sorted = trace.order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2}));
  // All three bits fully separate 8 sources.
  EXPECT_DOUBLE_EQ(trace.mean_cluster_size.back(), 1.0);
  // Mean sizes are non-increasing.
  for (std::size_t i = 1; i < trace.mean_cluster_size.size(); ++i) {
    EXPECT_LE(trace.mean_cluster_size[i], trace.mean_cluster_size[i - 1]);
  }
}

TEST(GreedySchedule, PicksMostInformativeFirst) {
  const auto matrix = skewed_matrix();
  const auto trace = greedy_schedule(matrix);
  ASSERT_FALSE(trace.order.empty());
  EXPECT_EQ(trace.order.front(), 2u);  // the fully-separating config
  EXPECT_DOUBLE_EQ(trace.mean_cluster_size.front(), 1.0);
}

TEST(GreedySchedule, StepLimitRespected) {
  const auto matrix = bit_matrix();
  const auto trace = greedy_schedule(matrix, 2);
  EXPECT_EQ(trace.order.size(), 2u);
  EXPECT_EQ(trace.mean_cluster_size.size(), 2u);
}

TEST(GreedySchedule, NeverWorseThanRandomAtEachStep) {
  const auto matrix = skewed_matrix();
  const auto greedy = greedy_schedule(matrix);
  util::Rng rng{11};
  for (int trial = 0; trial < 20; ++trial) {
    const auto random = random_schedule(matrix, rng);
    for (std::size_t k = 0; k < greedy.mean_cluster_size.size(); ++k) {
      EXPECT_LE(greedy.mean_cluster_size[k], random.mean_cluster_size[k] + 1e-9)
          << "greedy beaten at step " << k;
    }
  }
}

TEST(RandomEnsemble, PercentilesOrdered) {
  const auto matrix = skewed_matrix();
  const auto ensemble = random_ensemble(matrix, 50, 42);
  ASSERT_EQ(ensemble.p50.size(), matrix.size());
  for (std::size_t k = 0; k < ensemble.p50.size(); ++k) {
    EXPECT_LE(ensemble.p25[k], ensemble.p50[k]);
    EXPECT_LE(ensemble.p50[k], ensemble.p75[k]);
  }
  // After all configs everything converges to the full refinement.
  EXPECT_DOUBLE_EQ(ensemble.p25.back(), ensemble.p75.back());
}

TEST(RandomEnsemble, MaxStepsTruncates) {
  const auto matrix = skewed_matrix();
  const auto ensemble = random_ensemble(matrix, 10, 1, 2);
  EXPECT_EQ(ensemble.p50.size(), 2u);
}

TEST(RandomEnsemble, DeterministicForSeed) {
  const auto matrix = skewed_matrix();
  const auto a = random_ensemble(matrix, 20, 9);
  const auto b = random_ensemble(matrix, 20, 9);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p25, b.p25);
}

TEST(WeightedGreedy, ChasesTheHeavyCluster) {
  // Config 0 splits the heavy source's cluster; config 1 splits a light
  // cluster into many pieces. Plain greedy prefers config 1 (more
  // clusters); weighted greedy must prefer config 0.
  measure::CatchmentMatrix matrix;
  //             heavy--v
  matrix.push_back({0, 1, 0, 0, 0, 0});      // isolates source 1 (heavy)
  matrix.push_back({0, 0, 1, 2, 3, 4});      // shatters the light sources
  std::vector<double> volume = {0.0, 1.0, 0.0, 0.0, 0.0, 0.0};

  const auto plain = greedy_schedule(matrix, 1);
  ASSERT_EQ(plain.order.size(), 1u);
  EXPECT_EQ(plain.order[0], 1u);

  const auto weighted = weighted_greedy_schedule(matrix, volume, 1);
  ASSERT_EQ(weighted.order.size(), 1u);
  EXPECT_EQ(weighted.order[0], 0u);
  // After isolating the heavy source its weighted cluster size is 1.
  EXPECT_DOUBLE_EQ(weighted.mean_cluster_size[0], 1.0);
}

TEST(WeightedGreedy, ObjectiveIsMonotoneNonIncreasing) {
  measure::CatchmentMatrix matrix;
  matrix.push_back({0, 0, 1, 1, 2, 2, 0, 1});
  matrix.push_back({0, 1, 1, 0, 2, 0, 0, 1});
  matrix.push_back({2, 2, 2, 2, 2, 2, 0, 0});
  std::vector<double> volume = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto trace = weighted_greedy_schedule(matrix, volume);
  for (std::size_t i = 1; i < trace.mean_cluster_size.size(); ++i) {
    EXPECT_LE(trace.mean_cluster_size[i],
              trace.mean_cluster_size[i - 1] + 1e-9);
  }
}

TEST(WeightedGreedy, UniformWeightsMatchPlainObjective) {
  // With equal volumes the weighted objective is sum |c|^2 / S — not the
  // same argmin as cluster count in general, but its reported value after
  // refining everything must equal the expected cluster size of a random
  // member, computed independently.
  measure::CatchmentMatrix matrix;
  matrix.push_back({0, 0, 1, 1, 1, 2});
  const std::vector<double> volume(6, 1.0);
  const auto trace = weighted_greedy_schedule(matrix, volume, 1);
  // Clusters {2}{3}{1}: objective = (4 + 9 + 1) / 6.
  EXPECT_NEAR(trace.mean_cluster_size[0], 14.0 / 6.0, 1e-9);
}

TEST(WeightedGreedy, RejectsMismatchedVolumes) {
  measure::CatchmentMatrix matrix;
  matrix.push_back({0, 1});
  EXPECT_THROW(weighted_greedy_schedule(matrix, {1.0}),
               std::invalid_argument);
}

TEST(Schedules, EmptyMatrixHandled) {
  measure::CatchmentMatrix empty;
  util::Rng rng{1};
  EXPECT_TRUE(random_schedule(empty, rng).order.empty());
  EXPECT_TRUE(greedy_schedule(empty).order.empty());
  EXPECT_TRUE(weighted_greedy_schedule(empty, {}).order.empty());
  EXPECT_EQ(random_ensemble(empty, 5, 1).p50.size(), 0u);
}

}  // namespace
}  // namespace spooftrack::core
