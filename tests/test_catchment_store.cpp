// Equivalence suite for the columnar CatchmentStore (ISSUE 4): the store
// and the parallel greedy scheduler must be bit-identical to the legacy
// nested-vector algorithms they replaced. The legacy references below
// reimplement the pre-columnar code paths faithfully (same epoch-stamped
// buckets, same first-touch dense ids, same lowest-index-max tie break,
// same floating-point attribution arithmetic) so any divergence in the
// store, the singleton fast paths, or the deterministic parallel reduction
// fails loudly here.
#include "measure/catchment_store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <sstream>
#include <vector>

#include "bgp/catchment.hpp"
#include "core/attribution.hpp"
#include "core/cluster.hpp"
#include "core/cluster_slots.hpp"
#include "core/io.hpp"
#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace spooftrack {
namespace {

// --- Legacy reference implementations (pre-columnar algorithms) -----------

std::size_t legacy_slot(bgp::LinkId link) {
  return link == bgp::kNoCatchment ? core::kMissingSlot
                                   : static_cast<std::size_t>(link);
}

/// Pre-refactor incremental refinement over u32 nested-vector rows.
class LegacyTracker {
 public:
  explicit LegacyTracker(std::size_t sources)
      : cluster_of_(sources, 0),
        cluster_count_(sources == 0 ? 0 : 1),
        keys_(std::max<std::size_t>(1, sources) * core::kSlots, 0),
        order_(keys_.size(), 0) {}

  std::uint32_t refine(const std::vector<bgp::LinkId>& row) {
    ++epoch_;
    std::uint32_t next_id = 0;
    for (std::size_t s = 0; s < cluster_of_.size(); ++s) {
      const std::size_t key =
          static_cast<std::size_t>(cluster_of_[s]) * core::kSlots +
          legacy_slot(row[s]);
      if (keys_[key] != epoch_) {
        keys_[key] = epoch_;
        order_[key] = next_id++;
      }
      cluster_of_[s] = order_[key];
    }
    cluster_count_ = next_id;
    return next_id;
  }

  std::uint32_t count_after(const std::vector<bgp::LinkId>& row) {
    ++epoch_;
    std::uint32_t count = 0;
    for (std::size_t s = 0; s < cluster_of_.size(); ++s) {
      const std::size_t key =
          static_cast<std::size_t>(cluster_of_[s]) * core::kSlots +
          legacy_slot(row[s]);
      if (keys_[key] != epoch_) {
        keys_[key] = epoch_;
        ++count;
      }
    }
    return count;
  }

  const std::vector<std::uint32_t>& cluster_of() const { return cluster_of_; }
  std::uint32_t cluster_count() const { return cluster_count_; }

 private:
  std::vector<std::uint32_t> cluster_of_;
  std::uint32_t cluster_count_ = 0;
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> order_;
  std::uint64_t epoch_ = 0;
};

/// Pre-refactor serial greedy schedule: scan every remaining config, pick
/// the max refined cluster count, lowest index on ties.
std::vector<std::size_t> legacy_greedy(const measure::CatchmentMatrix& matrix,
                                       std::size_t steps) {
  const std::size_t sources = matrix.empty() ? 0 : matrix.front().size();
  LegacyTracker tracker(sources);
  std::vector<bool> used(matrix.size(), false);
  std::vector<std::size_t> order;
  const std::size_t horizon =
      steps == 0 ? matrix.size() : std::min(steps, matrix.size());
  for (std::size_t k = 0; k < horizon; ++k) {
    std::size_t best = matrix.size();
    std::uint32_t best_count = 0;
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      if (used[i]) continue;
      const std::uint32_t count = tracker.count_after(matrix[i]);
      if (best == matrix.size() || count > best_count) {
        best = i;
        best_count = count;
      }
    }
    if (best == matrix.size()) break;
    used[best] = true;
    tracker.refine(matrix[best]);
    order.push_back(best);
  }
  return order;
}

/// Pre-refactor attribution scores over nested-vector trajectories: same
/// arithmetic, same iteration order, so rankings must match bit-for-bit.
std::vector<std::uint32_t> legacy_attribution_ranking(
    const measure::CatchmentMatrix& matrix,
    const std::vector<std::uint32_t>& cluster_of, std::uint32_t cluster_count,
    const std::vector<std::vector<double>>& link_volume_per_config) {
  constexpr auto kNone = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> representative(cluster_count, kNone);
  for (std::uint32_t s = 0; s < cluster_of.size(); ++s) {
    auto& rep = representative[cluster_of[s]];
    if (rep == kNone) rep = s;
  }

  constexpr double kEpsilon = 1e-6;
  std::vector<double> score(cluster_count,
                            -std::numeric_limits<double>::infinity());
  for (std::uint32_t c = 0; c < cluster_count; ++c) {
    double s = 0.0;
    for (std::size_t k = 0; k < matrix.size(); ++k) {
      const bgp::LinkId link = matrix[k][representative[c]];
      const auto& volumes = link_volume_per_config[k];
      double observed = kEpsilon;
      if (link != bgp::kNoCatchment && link < volumes.size()) {
        observed += volumes[link];
      }
      s += std::log(observed);
    }
    score[c] = s;
  }

  std::vector<std::uint32_t> ranking(cluster_count);
  std::iota(ranking.begin(), ranking.end(), 0u);
  std::sort(ranking.begin(), ranking.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (score[a] != score[b]) return score[a] > score[b];
              return a < b;
            });
  return ranking;
}

// --------------------------------------------------------------------------

constexpr std::uint32_t kLinkCount = 7;

/// Deterministic randomized matrix: hidden source groups plus flip/missing
/// noise, so refinement splits clusters gradually (the regime greedy
/// scheduling actually runs in) instead of saturating on the first row.
measure::CatchmentMatrix random_matrix(std::size_t configs,
                                       std::size_t sources,
                                       std::uint64_t seed) {
  util::Rng rng(seed ^ 0xCA7C);
  const std::size_t groups = std::max<std::size_t>(4, sources / 5);
  std::vector<std::size_t> group_of(sources);
  for (auto& g : group_of) g = rng.next_below(groups);

  measure::CatchmentMatrix matrix(configs);
  std::vector<bgp::LinkId> prototype(groups);
  for (auto& row : matrix) {
    for (auto& p : prototype) {
      p = static_cast<bgp::LinkId>(rng.next_below(kLinkCount));
    }
    row.resize(sources);
    for (std::size_t s = 0; s < sources; ++s) {
      if (rng.chance(0.03)) {
        row[s] = bgp::kNoCatchment;
      } else if (rng.chance(0.03)) {
        row[s] = static_cast<bgp::LinkId>(rng.next_below(kLinkCount));
      } else {
        row[s] = prototype[group_of[s]];
      }
    }
  }
  return matrix;
}

std::vector<std::vector<double>> random_volumes(
    const measure::CatchmentMatrix& matrix, std::uint64_t seed) {
  util::Rng rng(seed ^ 0xB01);
  const std::size_t sources = matrix.empty() ? 0 : matrix.front().size();
  std::vector<double> volume(sources);
  for (auto& v : volume) v = rng.pareto(1.2);
  std::vector<std::vector<double>> per_config(
      matrix.size(), std::vector<double>(kLinkCount, 0.0));
  for (std::size_t c = 0; c < matrix.size(); ++c) {
    for (std::size_t s = 0; s < sources; ++s) {
      const bgp::LinkId link = matrix[c][s];
      if (link != bgp::kNoCatchment && link < kLinkCount) {
        per_config[c][link] += volume[s];
      }
    }
  }
  return per_config;
}

// --- Store basics ---------------------------------------------------------

TEST(CatchmentStore, EncodeDecodeRoundTrip) {
  for (bgp::LinkId link = 0; link < bgp::kMaxCatchmentLinks; ++link) {
    const std::uint8_t cell = measure::CatchmentStore::encode(link);
    EXPECT_EQ(measure::CatchmentStore::decode(cell), link);
  }
  EXPECT_EQ(measure::CatchmentStore::encode(bgp::kNoCatchment),
            bgp::kNoCatchment8);
  EXPECT_EQ(measure::CatchmentStore::decode(bgp::kNoCatchment8),
            bgp::kNoCatchment);
}

TEST(CatchmentStore, EncodeThrowsOutOfRange) {
  EXPECT_THROW(measure::CatchmentStore::encode(bgp::kMaxCatchmentLinks),
               std::out_of_range);
  EXPECT_THROW(measure::CatchmentStore::encode(100), std::out_of_range);
}

TEST(CatchmentStore, ConstructionValidates) {
  EXPECT_THROW(measure::CatchmentStore(measure::CatchmentMatrix{{0, 1}, {2}}),
               std::invalid_argument);
  EXPECT_THROW(
      measure::CatchmentStore(measure::CatchmentMatrix{{0, 62, 1}}),
      std::out_of_range);
  EXPECT_NO_THROW(measure::CatchmentStore(
      measure::CatchmentMatrix{{0, 61, bgp::kNoCatchment}}));
}

TEST(CatchmentStore, ViewsMatchLegacyLayout) {
  const measure::CatchmentMatrix legacy =
      random_matrix(/*configs=*/13, /*sources=*/29, /*seed=*/7);
  const measure::CatchmentStore store(legacy);
  ASSERT_EQ(store.configs(), legacy.size());
  ASSERT_EQ(store.sources(), legacy.front().size());
  EXPECT_EQ(store.size_bytes(), legacy.size() * legacy.front().size());

  for (std::size_t c = 0; c < store.configs(); ++c) {
    const auto row = store.row(c);
    for (std::size_t s = 0; s < store.sources(); ++s) {
      EXPECT_EQ(store.link_at(c, s), legacy[c][s]);
      EXPECT_EQ(measure::CatchmentStore::decode(row[s]), legacy[c][s]);
    }
  }
  for (std::size_t s = 0; s < store.sources(); ++s) {
    const auto column = store.column(s);
    ASSERT_EQ(column.size(), store.configs());
    for (std::size_t c = 0; c < store.configs(); ++c) {
      EXPECT_EQ(measure::CatchmentStore::decode(column[c]), legacy[c][s]);
    }
  }
  EXPECT_EQ(store.to_rows(), legacy);
}

TEST(CatchmentStore, AppendRowMatchesConversion) {
  const measure::CatchmentMatrix legacy = random_matrix(6, 17, 21);
  measure::CatchmentStore incremental;
  for (const auto& row : legacy) {
    incremental.append_row(std::span<const bgp::LinkId>(row));
  }
  EXPECT_EQ(incremental, measure::CatchmentStore(legacy));

  // Later rows must match the column count fixed by the first.
  EXPECT_THROW(incremental.append_row(std::span<const bgp::LinkId>(
                   std::vector<bgp::LinkId>{0})),
               std::invalid_argument);
}

TEST(CatchmentStore, ArtifactRoundTripPreservesMatrix) {
  core::DeploymentArtifact artifact;
  artifact.seed = 11;
  artifact.as_count = 40;
  artifact.link_count = kLinkCount;
  artifact.sources = {3, 9, 12};
  artifact.matrix =
      measure::CatchmentMatrix{{0, 1, bgp::kNoCatchment}, {2, 2, 0}};
  artifact.source_distance = {1, 2, 3};

  std::stringstream buffer;
  core::save_artifact(artifact, buffer);
  const core::DeploymentArtifact loaded = core::load_artifact(buffer);
  EXPECT_EQ(loaded.matrix, artifact.matrix);
  EXPECT_EQ(loaded, artifact);
}

// --- Out-of-range cells raise instead of aliasing -------------------------

TEST(ClusterSlots, TrackerThrowsOnOutOfRangeLink) {
  core::ClusterTracker tracker(3);
  const std::vector<bgp::LinkId> bad = {0, bgp::kMaxCatchmentLinks, 1};
  EXPECT_THROW(tracker.refine(std::span<const bgp::LinkId>(bad)),
               std::out_of_range);

  const std::vector<std::uint8_t> bad_cells = {0, 62, 1};
  EXPECT_THROW(tracker.refine(std::span<const std::uint8_t>(bad_cells)),
               std::out_of_range);

  // The missing sentinel is in range for both cell widths.
  const std::vector<std::uint8_t> ok = {0, bgp::kNoCatchment8, 1};
  EXPECT_NO_THROW(tracker.refine(std::span<const std::uint8_t>(ok)));
}

TEST(ClusterSlots, SlotOfThrowsOnOutOfRange) {
  EXPECT_EQ(core::slot_of(bgp::kNoCatchment), core::kMissingSlot);
  EXPECT_EQ(core::slot_of(std::uint8_t{bgp::kNoCatchment8}),
            core::kMissingSlot);
  EXPECT_EQ(core::slot_of(bgp::LinkId{61}), 61u);
  EXPECT_THROW(core::slot_of(bgp::LinkId{62}), std::out_of_range);
  EXPECT_THROW(core::slot_of(std::uint8_t{62}), std::out_of_range);
  EXPECT_THROW(core::slot_of(std::uint8_t{0xFE}), std::out_of_range);
}

// --- Randomized equivalence: store vs legacy algorithms -------------------

TEST(StoreEquivalence, ClusteringMatchesLegacyReference) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto legacy_matrix = random_matrix(40, 200, seed);
    const measure::CatchmentStore store(legacy_matrix);

    LegacyTracker legacy(200);
    for (const auto& row : legacy_matrix) legacy.refine(row);
    const core::Clustering clustering = core::cluster_sources(store);

    EXPECT_EQ(clustering.cluster_of, legacy.cluster_of()) << "seed " << seed;
    EXPECT_EQ(clustering.cluster_count, legacy.cluster_count())
        << "seed " << seed;
  }
}

TEST(StoreEquivalence, GreedyOrderMatchesLegacyReference) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto legacy_matrix = random_matrix(60, 150, seed);
    const measure::CatchmentStore store(legacy_matrix);

    const auto legacy_order = legacy_greedy(legacy_matrix, /*steps=*/0);
    const auto trace = core::greedy_schedule(store, /*steps=*/0,
                                             /*workers=*/1);
    EXPECT_EQ(trace.order, legacy_order) << "seed " << seed;
  }
}

TEST(StoreEquivalence, ParallelGreedyMatchesSerial) {
  for (std::uint64_t seed : {1u, 2u}) {
    const auto legacy_matrix = random_matrix(50, 180, seed);
    const measure::CatchmentStore store(legacy_matrix);

    const auto serial = core::greedy_schedule(store, 0, /*workers=*/1);
    for (std::size_t workers : {2u, 8u}) {
      const auto parallel = core::greedy_schedule(store, 0, workers);
      EXPECT_EQ(parallel.order, serial.order)
          << "seed " << seed << ", workers " << workers;
      EXPECT_EQ(parallel.mean_cluster_size, serial.mean_cluster_size)
          << "seed " << seed << ", workers " << workers;
    }
  }
}

TEST(StoreEquivalence, AttributionRankingMatchesLegacyReference) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto legacy_matrix = random_matrix(30, 120, seed);
    const measure::CatchmentStore store(legacy_matrix);
    const auto volumes = random_volumes(legacy_matrix, seed);

    const core::Clustering clustering = core::cluster_sources(store);
    const core::AttributionResult result =
        core::attribute_clusters(store, clustering, volumes);
    const auto legacy_ranking = legacy_attribution_ranking(
        legacy_matrix, clustering.cluster_of, clustering.cluster_count,
        volumes);
    EXPECT_EQ(result.ranking, legacy_ranking) << "seed " << seed;
  }
}

}  // namespace
}  // namespace spooftrack
