#include "core/mitigation.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace spooftrack::core {
namespace {

/// Three singleton clusters over three sources (AsIds 0, 1, 2 in a tiny
/// graph), live catchments 0/1/1, attack weight concentrated on cluster 0.
struct MitigationWorld {
  MitigationWorld() {
    graph.add_p2c(100, 1);
    graph.add_p2c(100, 2);
    graph.add_p2c(100, 3);
    graph.freeze();
    sources = {*graph.id_of(1), *graph.id_of(2), *graph.id_of(3)};

    clustering.cluster_of = {0, 1, 2};
    clustering.cluster_count = 3;

    live.link_of.assign(graph.size(), bgp::kNoCatchment);
    live.link_of[sources[0]] = 0;
    live.link_of[sources[1]] = 1;
    live.link_of[sources[2]] = 1;

    mixture.components = {{0, 0.7}, {1, 0.2}};
    mixture.residual_fraction = 0.1;
  }

  topology::AsGraph graph;
  std::vector<topology::AsId> sources;
  Clustering clustering;
  bgp::CatchmentMap live;
  MixtureResult mixture;
};

TEST(Mitigation, BlackholesQuietLinksFiltersBusyOnes) {
  MitigationWorld world;
  // Link 0 carries almost no legitimate traffic; link 1 carries most.
  const std::vector<double> legit = {0.02, 0.98};
  const auto plan =
      plan_mitigation(world.mixture, world.clustering, world.sources,
                      world.graph, world.live, legit);

  ASSERT_EQ(plan.actions.size(), 2u);
  EXPECT_EQ(plan.actions[0].kind, MitigationKind::kBlackhole);
  EXPECT_EQ(plan.actions[0].link, 0u);
  EXPECT_EQ(plan.actions[0].suspects, (std::vector<topology::Asn>{1}));
  EXPECT_NEAR(plan.actions[0].collateral_share, 0.02, 1e-9);

  EXPECT_EQ(plan.actions[1].kind, MitigationKind::kFlowspecFilter);
  EXPECT_EQ(plan.actions[1].link, 1u);
  EXPECT_EQ(plan.actions[1].suspects, (std::vector<topology::Asn>{2}));

  EXPECT_NEAR(plan.covered_weight, 0.9, 1e-9);
  EXPECT_NEAR(plan.unattributed, 0.1, 1e-9);
}

TEST(Mitigation, ThresholdIsConfigurable) {
  MitigationWorld world;
  const std::vector<double> legit = {0.02, 0.98};
  MitigationOptions options;
  options.blackhole_collateral_threshold = 0.0;  // never blackhole
  const auto plan =
      plan_mitigation(world.mixture, world.clustering, world.sources,
                      world.graph, world.live, legit, options);
  for (const auto& action : plan.actions) {
    EXPECT_EQ(action.kind, MitigationKind::kFlowspecFilter);
  }
}

TEST(Mitigation, MaxActionsCap) {
  MitigationWorld world;
  MitigationOptions options;
  options.max_actions = 1;
  const auto plan =
      plan_mitigation(world.mixture, world.clustering, world.sources,
                      world.graph, world.live, {0.5, 0.5}, options);
  ASSERT_EQ(plan.actions.size(), 1u);
  EXPECT_EQ(plan.actions[0].cluster, 0u);  // highest weight first
  EXPECT_NEAR(plan.covered_weight, 0.7, 1e-9);
}

TEST(Mitigation, UnroutedClustersAreSkipped) {
  MitigationWorld world;
  // Cluster 0's only member has no live catchment.
  world.live.link_of[world.sources[0]] = bgp::kNoCatchment;
  const auto plan =
      plan_mitigation(world.mixture, world.clustering, world.sources,
                      world.graph, world.live, {0.5, 0.5});
  ASSERT_EQ(plan.actions.size(), 1u);
  EXPECT_EQ(plan.actions[0].cluster, 1u);
}

TEST(Mitigation, ZeroLegitTrafficMeansZeroCollateral) {
  MitigationWorld world;
  const auto plan =
      plan_mitigation(world.mixture, world.clustering, world.sources,
                      world.graph, world.live, {0.0, 0.0});
  for (const auto& action : plan.actions) {
    EXPECT_EQ(action.collateral_share, 0.0);
    EXPECT_EQ(action.kind, MitigationKind::kBlackhole);
  }
}

TEST(Mitigation, DescribeMentionsSuspects) {
  MitigationWorld world;
  const auto plan =
      plan_mitigation(world.mixture, world.clustering, world.sources,
                      world.graph, world.live, {0.02, 0.98});
  const auto text = plan.actions[0].describe();
  EXPECT_NE(text.find("blackhole"), std::string::npos);
  EXPECT_NE(text.find("AS1"), std::string::npos);
}

TEST(Mitigation, KindNames) {
  EXPECT_STREQ(to_string(MitigationKind::kBlackhole), "blackhole");
  EXPECT_STREQ(to_string(MitigationKind::kFlowspecFilter),
               "flowspec-filter");
}

}  // namespace
}  // namespace spooftrack::core
