// Property tests: structural invariants of the routing engine on randomly
// synthesized topologies, across seeds (parameterized sweep).
#include <gtest/gtest.h>

#include "bgp/catchment.hpp"
#include "bgp/engine.hpp"
#include "core/experiment.hpp"
#include "topology/metrics.hpp"
#include "topology/synth.hpp"

namespace spooftrack {
namespace {

struct World {
  topology::SynthTopology topo;
  bgp::OriginSpec origin;
};

World make_world(std::uint64_t seed) {
  topology::SynthConfig config;
  config.seed = seed;
  config.tier1_count = 5;
  config.transit_count = 40;
  config.stub_count = 400;
  config.reserved_transit_asns = {12859, 5408, 226, 156};
  config.origin_asn = core::kPeeringAsn;
  World world;
  world.topo = topology::synthesize(config);
  world.origin.asn = core::kPeeringAsn;
  bgp::LinkId id = 0;
  for (topology::Asn provider : config.reserved_transit_asns) {
    world.origin.links.push_back({id++, "pop", provider});
  }
  return world;
}

class EngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

/// Relationship step of hop a -> b in traffic direction.
enum class Step { kUp, kFlat, kDown };

Step classify(const topology::AsGraph& g, topology::AsId from,
              topology::AsId to) {
  const auto rel = g.relationship(from, to);
  EXPECT_TRUE(rel.has_value()) << "path hop is not an edge";
  switch (*rel) {
    case topology::Rel::kProvider: return Step::kUp;
    case topology::Rel::kPeer: return Step::kFlat;
    case topology::Rel::kCustomer: return Step::kDown;
  }
  return Step::kFlat;
}

TEST_P(EngineProperty, ConvergesAndRoutesAreValleyFree) {
  World world = make_world(GetParam());
  bgp::PolicyConfig pconfig;
  pconfig.seed = GetParam();
  // Keep poisoning semantics pure for the valley-free check, but keep the
  // tiebreak deviations on (they must not break valley-freeness).
  bgp::RoutingPolicy policy(world.topo.graph, pconfig);
  bgp::Engine engine(world.topo.graph, policy);

  bgp::Configuration config;
  for (const auto& link : world.origin.links) {
    config.announcements.push_back({link.id, 0, {}, {}});
  }

  const auto outcome = engine.run(world.origin, config);
  ASSERT_TRUE(outcome.converged);
  EXPECT_LT(outcome.rounds, 64u);

  const auto& g = world.topo.graph;
  const topology::AsId origin_id = *g.id_of(world.origin.asn);

  std::size_t routed = 0;
  for (topology::AsId as = 0; as < g.size(); ++as) {
    if (as == origin_id) continue;
    const bgp::Route& route = outcome.best[as];
    ASSERT_TRUE(route.valid()) << "AS " << g.asn_of(as) << " unrouted";
    ++routed;

    // The data-plane path must be loop-free and end at the origin.
    const auto path = bgp::forwarding_path(outcome, as, origin_id);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), as);
    EXPECT_EQ(path.back(), origin_id);

    // Valley-free: downhill or flat steps never precede uphill steps, and
    // at most one flat (peer) step.
    bool seen_flat_or_down = false;
    int flat_steps = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const Step step = classify(g, path[i], path[i + 1]);
      if (step == Step::kUp) {
        EXPECT_FALSE(seen_flat_or_down)
            << "valley in path of AS " << g.asn_of(as);
      } else {
        seen_flat_or_down = true;
        if (step == Step::kFlat) ++flat_steps;
      }
    }
    EXPECT_LE(flat_steps, 1) << "two peer links in path of AS "
                             << g.asn_of(as);
  }
  EXPECT_EQ(routed, g.size() - 1);
}

TEST_P(EngineProperty, WithdrawalForcesAlternateRoutes) {
  World world = make_world(GetParam());
  bgp::RoutingPolicy policy(world.topo.graph, bgp::PolicyConfig{});
  bgp::Engine engine(world.topo.graph, policy);

  bgp::Configuration all;
  for (const auto& link : world.origin.links) {
    all.announcements.push_back({link.id, 0, {}, {}});
  }
  const auto base = engine.run(world.origin, all);
  const auto base_map = bgp::extract_catchments(base, all);

  // Withdraw link 0: all its former catchment members must land on other
  // links (the graph is connected, so no one loses reachability).
  bgp::Configuration without;
  for (const auto& link : world.origin.links) {
    if (link.id != 0) without.announcements.push_back({link.id, 0, {}, {}});
  }
  const auto outcome = engine.run(world.origin, without);
  const auto map = bgp::extract_catchments(outcome, without);

  const topology::AsId origin_id = *world.topo.graph.id_of(world.origin.asn);
  for (topology::AsId as = 0; as < world.topo.graph.size(); ++as) {
    if (as == origin_id) continue;
    EXPECT_NE(map[as], 0u);
    EXPECT_NE(map[as], bgp::kNoCatchment);
    if (base_map[as] != 0u) {
      // Sources not on link 0 may or may not move; sources on link 0 must.
      continue;
    }
  }
}

TEST_P(EngineProperty, PrependingNeverBreaksReachability) {
  World world = make_world(GetParam());
  bgp::RoutingPolicy policy(world.topo.graph, bgp::PolicyConfig{});
  bgp::Engine engine(world.topo.graph, policy);

  bgp::Configuration config;
  for (const auto& link : world.origin.links) {
    config.announcements.push_back({link.id, link.id == 1 ? 4u : 0u, {}});
  }
  const auto outcome = engine.run(world.origin, config);
  ASSERT_TRUE(outcome.converged);
  const auto map = bgp::extract_catchments(outcome, config);
  EXPECT_EQ(map.routed_count(), world.topo.graph.size() - 1);
}

TEST_P(EngineProperty, PoisoningMovesOrKeepsButNeverStrands) {
  World world = make_world(GetParam());
  bgp::PolicyConfig pconfig;
  pconfig.ignore_poison_fraction = 0.0;
  bgp::RoutingPolicy policy(world.topo.graph, pconfig);
  bgp::Engine engine(world.topo.graph, policy);

  // Poison one neighbor of link 0's provider.
  const auto provider_id =
      *world.topo.graph.id_of(world.origin.links[0].provider);
  topology::Asn target = 0;
  for (const auto& n : world.topo.graph.neighbors(provider_id)) {
    const topology::Asn asn = world.topo.graph.asn_of(n.id);
    if (asn != world.origin.asn) {
      target = asn;
      break;
    }
  }
  ASSERT_NE(target, 0u);

  bgp::Configuration config;
  for (const auto& link : world.origin.links) {
    bgp::AnnouncementSpec spec{link.id, 0, {}, {}};
    if (link.id == 0) spec.poisoned.push_back(target);
    config.announcements.push_back(spec);
  }
  const auto outcome = engine.run(world.origin, config);
  ASSERT_TRUE(outcome.converged);

  // The poisoned AS must not route via link 0's announcement, and the
  // connectivity of the rest must be intact (multiple links remain).
  const auto map = bgp::extract_catchments(outcome, config);
  const auto target_id = *world.topo.graph.id_of(target);
  EXPECT_NE(map[target_id], 0u) << "poisoned AS still on poisoned link";
  EXPECT_EQ(map.routed_count(), world.topo.graph.size() - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace spooftrack
