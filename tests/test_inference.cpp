#include "measure/inference.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace spooftrack::measure {
namespace {

class InferenceTest : public ::testing::Test {
 protected:
  InferenceTest()
      : graph_(test::small_topology()),
        origin_(test::small_origin()),
        inference_(graph_, origin_) {}

  topology::AsId id(topology::Asn asn) const { return *graph_.id_of(asn); }

  topology::AsGraph graph_;
  bgp::OriginSpec origin_;
  CatchmentInference inference_;
};

TEST_F(InferenceTest, LinkFromPlainPath) {
  const std::vector<topology::Asn> path = {test::kC, test::kT1, test::kP1,
                                           test::kOrigin};
  EXPECT_EQ(link_from_as_path(path, origin_), 0u);
}

TEST_F(InferenceTest, LinkFromPrependedPath) {
  const std::vector<topology::Asn> path = {test::kB, test::kP2, test::kOrigin,
                                           test::kOrigin, test::kOrigin};
  EXPECT_EQ(link_from_as_path(path, origin_), 1u);
}

TEST_F(InferenceTest, LinkFromPoisonSandwichPath) {
  const std::vector<topology::Asn> path = {test::kB, test::kP2, test::kOrigin,
                                           test::kT2, test::kOrigin};
  EXPECT_EQ(link_from_as_path(path, origin_), 1u);
}

TEST_F(InferenceTest, NoLinkWhenPathMissesOrigin) {
  const std::vector<topology::Asn> path = {test::kC, test::kT1};
  EXPECT_FALSE(link_from_as_path(path, origin_).has_value());
}

TEST_F(InferenceTest, NoLinkWhenProviderUnknown) {
  const std::vector<topology::Asn> path = {test::kC, test::kT1,
                                           test::kOrigin};
  // t1 is not a peering-link provider.
  EXPECT_FALSE(link_from_as_path(path, origin_).has_value());
}

TEST_F(InferenceTest, FeedVotesCoverIntermediateAses) {
  FeedEntry feed;
  feed.peer = id(test::kC);
  feed.as_path = {test::kC, test::kT1, test::kP1, test::kOrigin};
  const auto result = inference_.infer(std::vector<FeedEntry>{feed}, {});
  // c, t1 and p1 are all observed and assigned to link 0.
  for (topology::Asn asn : {test::kC, test::kT1, test::kP1}) {
    EXPECT_TRUE(result.observed[id(asn)]) << asn;
    EXPECT_EQ(result.catchments.link_of[id(asn)], 0u) << asn;
  }
  EXPECT_EQ(result.covered_count, 3u);
  EXPECT_FALSE(result.observed[id(test::kB)]);
  EXPECT_EQ(result.catchments.link_of[id(test::kB)], bgp::kNoCatchment);
}

TEST_F(InferenceTest, BgpVotesOutrankTraceroutes) {
  // One BGP vote for link 0; two traceroute votes for link 1. BGP wins.
  FeedEntry feed;
  feed.peer = id(test::kC);
  feed.as_path = {test::kC, test::kT1, test::kP1, test::kOrigin};

  AsLevelPath trace;
  trace.probe = id(test::kC);
  trace.path = {test::kC, test::kT2, test::kP2, test::kOrigin};
  trace.complete = true;

  const auto result = inference_.infer(
      std::vector<FeedEntry>{feed}, std::vector<AsLevelPath>{trace, trace});
  EXPECT_EQ(result.catchments.link_of[id(test::kC)], 0u);
  // The conflict is recorded in the multi-catchment statistic.
  EXPECT_GT(result.multi_catchment_fraction, 0.0);
}

TEST_F(InferenceTest, MajorityWithinTypeWins) {
  AsLevelPath via_p1;
  via_p1.probe = id(test::kC);
  via_p1.path = {test::kC, test::kT1, test::kP1, test::kOrigin};
  via_p1.complete = true;
  AsLevelPath via_p2 = via_p1;
  via_p2.path = {test::kC, test::kT2, test::kP2, test::kOrigin};

  const auto result = inference_.infer(
      {}, std::vector<AsLevelPath>{via_p2, via_p1, via_p2});
  EXPECT_EQ(result.catchments.link_of[id(test::kC)], 1u);
}

TEST_F(InferenceTest, IncompleteTraceroutesIgnored) {
  AsLevelPath incomplete;
  incomplete.probe = id(test::kC);
  incomplete.path = {test::kC, test::kT1};
  incomplete.complete = false;
  const auto result =
      inference_.infer({}, std::vector<AsLevelPath>{incomplete});
  EXPECT_EQ(result.covered_count, 0u);
}

TEST_F(InferenceTest, MultiCatchmentFractionCounts) {
  // c votes for both links (conflicting traces); t1 only for link 0.
  AsLevelPath via_p1;
  via_p1.probe = id(test::kC);
  via_p1.path = {test::kC, test::kT1, test::kP1, test::kOrigin};
  via_p1.complete = true;
  AsLevelPath via_p2;
  via_p2.probe = id(test::kC);
  via_p2.path = {test::kC, test::kT2, test::kP2, test::kOrigin};
  via_p2.complete = true;

  const auto result =
      inference_.infer({}, std::vector<AsLevelPath>{via_p1, via_p2});
  // Observed: c, t1, p1, t2, p2 = 5; only c conflicts.
  EXPECT_EQ(result.covered_count, 5u);
  EXPECT_NEAR(result.multi_catchment_fraction, 0.2, 1e-9);
}

}  // namespace
}  // namespace spooftrack::measure
