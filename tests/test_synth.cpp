#include "topology/synth.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/metrics.hpp"

namespace spooftrack::topology {
namespace {

SynthConfig small_config() {
  SynthConfig config;
  config.seed = 3;
  config.tier1_count = 4;
  config.transit_count = 30;
  config.stub_count = 300;
  return config;
}

TEST(Synth, ProducesRequestedPopulation) {
  const auto topo = synthesize(small_config());
  EXPECT_EQ(topo.tier1.size(), 4u);
  EXPECT_EQ(topo.transit.size(), 30u);
  EXPECT_EQ(topo.stubs.size(), 300u);
  EXPECT_EQ(topo.graph.size(), 4u + 30u + 300u);
  EXPECT_TRUE(topo.graph.frozen());
}

TEST(Synth, DeterministicForSeed) {
  const auto a = synthesize(small_config());
  const auto b = synthesize(small_config());
  EXPECT_EQ(a.graph.size(), b.graph.size());
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  EXPECT_EQ(a.tier1, b.tier1);
  EXPECT_EQ(a.transit, b.transit);
}

TEST(Synth, SeedChangesTopology) {
  auto config = small_config();
  const auto a = synthesize(config);
  config.seed = 4;
  const auto b = synthesize(config);
  EXPECT_NE(a.graph.edge_count(), b.graph.edge_count());
}

TEST(Synth, Tier1FormsPeeringClique) {
  const auto topo = synthesize(small_config());
  for (Asn x : topo.tier1) {
    for (Asn y : topo.tier1) {
      if (x == y) continue;
      EXPECT_EQ(topo.graph.relationship(*topo.graph.id_of(x),
                                        *topo.graph.id_of(y)),
                Rel::kPeer);
    }
  }
}

TEST(Synth, GraphIsValleyFreeFriendly) {
  const auto topo = synthesize(small_config());
  EXPECT_TRUE(p2c_acyclic(topo.graph));
  EXPECT_TRUE(connected(topo.graph));
}

TEST(Synth, EveryNonTier1HasAProvider) {
  const auto topo = synthesize(small_config());
  for (Asn asn : topo.transit) {
    EXPECT_FALSE(topo.graph.is_provider_free(*topo.graph.id_of(asn)))
        << "transit AS " << asn;
  }
  for (Asn asn : topo.stubs) {
    EXPECT_FALSE(topo.graph.is_provider_free(*topo.graph.id_of(asn)))
        << "stub AS " << asn;
  }
}

TEST(Synth, ReservedAsnsBecomeWellConnectedTransit) {
  auto config = small_config();
  config.reserved_transit_asns = {12859, 5408, 226};
  const auto topo = synthesize(config);
  for (Asn asn : config.reserved_transit_asns) {
    const auto id = topo.graph.id_of(asn);
    ASSERT_TRUE(id.has_value()) << asn;
    // The attraction bonus should give reserved ASes a healthy customer
    // base (enough poison targets for the experiment).
    EXPECT_GE(topo.graph.degree(*id), 5u) << asn;
  }
  // Reserved ASNs appear exactly once, as transit.
  EXPECT_EQ(topo.transit[0], 12859u);
  EXPECT_EQ(topo.transit[1], 5408u);
  EXPECT_EQ(topo.transit[2], 226u);
}

TEST(Synth, OriginAttachment) {
  auto config = small_config();
  config.reserved_transit_asns = {12859, 5408};
  config.origin_asn = 47065;
  const auto topo = synthesize(config);
  const auto origin = topo.graph.id_of(47065);
  ASSERT_TRUE(origin.has_value());
  for (Asn provider : config.reserved_transit_asns) {
    EXPECT_EQ(topo.graph.relationship(*origin, *topo.graph.id_of(provider)),
              Rel::kProvider);
  }
  EXPECT_EQ(topo.graph.degree(*origin), 2u);
}

TEST(Synth, RejectsBadConfigs) {
  SynthConfig no_tier1 = small_config();
  no_tier1.tier1_count = 0;
  EXPECT_THROW(synthesize(no_tier1), std::invalid_argument);

  SynthConfig too_many_reserved = small_config();
  too_many_reserved.transit_count = 1;
  too_many_reserved.reserved_transit_asns = {1, 2, 3};
  EXPECT_THROW(synthesize(too_many_reserved), std::invalid_argument);
}

TEST(Synth, DegreeDistributionIsHeavyTailed) {
  SynthConfig config = small_config();
  config.stub_count = 1500;
  const auto topo = synthesize(config);
  std::vector<std::size_t> degrees;
  for (AsId id = 0; id < topo.graph.size(); ++id) {
    degrees.push_back(topo.graph.degree(id));
  }
  std::sort(degrees.rbegin(), degrees.rend());
  std::size_t total = 0, top = 0;
  const std::size_t decile = degrees.size() / 10;
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    total += degrees[i];
    if (i < decile) top += degrees[i];
  }
  // Preferential attachment: the top decile of ASes holds the majority of
  // adjacencies (Internet AS graphs are far more skewed still).
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(total), 0.5);
  // And the median AS is a small edge network.
  EXPECT_LE(degrees[degrees.size() / 2], 3u);
}

TEST(Synth, ReservedPositionFractionMovesCreationOrder) {
  SynthConfig config = small_config();
  config.reserved_transit_asns = {12859, 5408};
  config.reserved_position_fraction = 0.5;
  const auto topo = synthesize(config);
  // Reserved ASNs appear mid-pack in the transit creation order.
  const auto it =
      std::find(topo.transit.begin(), topo.transit.end(), 12859u);
  ASSERT_NE(it, topo.transit.end());
  const auto index =
      static_cast<std::size_t>(std::distance(topo.transit.begin(), it));
  EXPECT_GE(index, topo.transit.size() / 4);
  EXPECT_LT(index, topo.transit.size());
}

TEST(Synth, ScalesToLargerSizes) {
  SynthConfig config = small_config();
  config.transit_count = 120;
  config.stub_count = 2000;
  const auto topo = synthesize(config);
  EXPECT_EQ(topo.graph.size(), 4u + 120u + 2000u);
  EXPECT_TRUE(p2c_acyclic(topo.graph));
  EXPECT_TRUE(connected(topo.graph));
}

}  // namespace
}  // namespace spooftrack::topology
