#include "topology/as_graph.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace spooftrack::topology {
namespace {

TEST(AsGraph, AddAsIsIdempotent) {
  AsGraph g;
  const AsId a = g.add_as(100);
  const AsId b = g.add_as(100);
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.size(), 1u);
}

TEST(AsGraph, EdgesCreateMirroredRelationships) {
  AsGraph g;
  g.add_p2c(1, 2);
  g.add_p2p(2, 3);
  g.freeze();
  const AsId one = *g.id_of(1);
  const AsId two = *g.id_of(2);
  const AsId three = *g.id_of(3);
  EXPECT_EQ(g.relationship(one, two), Rel::kCustomer);  // 2 is 1's customer
  EXPECT_EQ(g.relationship(two, one), Rel::kProvider);
  EXPECT_EQ(g.relationship(two, three), Rel::kPeer);
  EXPECT_EQ(g.relationship(three, two), Rel::kPeer);
  EXPECT_FALSE(g.relationship(one, three).has_value());
}

TEST(AsGraph, DuplicateEdgesMerge) {
  AsGraph g;
  g.add_p2c(1, 2);
  g.add_p2c(1, 2);
  g.freeze();
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(*g.id_of(1)), 1u);
}

TEST(AsGraph, ConflictingRelationshipsThrowAtFreeze) {
  AsGraph g;
  g.add_p2c(1, 2);
  g.add_p2p(1, 2);
  EXPECT_THROW(g.freeze(), std::invalid_argument);
}

TEST(AsGraph, SelfLoopsRejected) {
  AsGraph g;
  EXPECT_THROW(g.add_p2c(5, 5), std::invalid_argument);
  EXPECT_THROW(g.add_p2p(7, 7), std::invalid_argument);
}

TEST(AsGraph, NeighborsWithFiltersByRelationship) {
  const AsGraph g = test::small_topology();
  const AsId p1 = *g.id_of(test::kP1);
  const auto customers = g.neighbors_with(p1, Rel::kCustomer);
  // p1's customers: a, d, origin.
  EXPECT_EQ(customers.size(), 3u);
  const auto providers = g.neighbors_with(p1, Rel::kProvider);
  ASSERT_EQ(providers.size(), 1u);
  EXPECT_EQ(g.asn_of(providers[0]), test::kT1);
}

TEST(AsGraph, ProviderFreeDetection) {
  const AsGraph g = test::small_topology();
  EXPECT_TRUE(g.is_provider_free(*g.id_of(test::kT1)));
  EXPECT_TRUE(g.is_provider_free(*g.id_of(test::kT2)));
  EXPECT_FALSE(g.is_provider_free(*g.id_of(test::kP1)));
  EXPECT_FALSE(g.is_provider_free(*g.id_of(test::kA)));
}

TEST(AsGraph, IdLookupRoundTrips) {
  const AsGraph g = test::small_topology();
  for (AsId id = 0; id < g.size(); ++id) {
    EXPECT_EQ(g.id_of(g.asn_of(id)), id);
  }
  EXPECT_FALSE(g.id_of(999999).has_value());
  EXPECT_FALSE(g.contains(999999));
  EXPECT_TRUE(g.contains(test::kOrigin));
}

TEST(AsGraph, EdgeCountCountsUndirectedEdges) {
  const AsGraph g = test::small_topology();
  // 1 peering + 10 p2c edges in the fixture.
  EXPECT_EQ(g.edge_count(), 11u);
}

TEST(AsGraph, ReverseRelation) {
  EXPECT_EQ(reverse(Rel::kCustomer), Rel::kProvider);
  EXPECT_EQ(reverse(Rel::kProvider), Rel::kCustomer);
  EXPECT_EQ(reverse(Rel::kPeer), Rel::kPeer);
}

}  // namespace
}  // namespace spooftrack::topology
