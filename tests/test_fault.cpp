// Chaos suite for spooftrack::fault (docs/faults.md).
//
// Pins the two properties the fault layer is built on — disabled is a
// provable no-op, and fault schedules are monotone subsets in the rate —
// plus the acceptance contract: one nonzero-fault deployment schedule is
// byte-identical across worker counts {1, 2, 8}, degradation is monotone
// and bounded across a rate sweep, and every emitted `fault.*` metric is
// documented in docs/faults.md.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "core/experiment.hpp"
#include "measure/address_plan.hpp"
#include "traffic/honeypot.hpp"
#include "traffic/spoofer.hpp"
#include "util/rng.hpp"

namespace spooftrack::fault {
namespace {

// ---------------------------------------------------------------------------
// Injector unit properties.
// ---------------------------------------------------------------------------

TEST(FaultInjector, DefaultConstructedNeverFires) {
  const FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (std::uint64_t a = 0; a < 50; ++a) {
    EXPECT_FALSE(injector.fires(Site::kFeedOutage, a, a * 3));
  }
}

TEST(FaultInjector, AllZeroPlanIsDisabled) {
  FaultPlan plan;
  plan.seed = 1234;  // seed alone never enables faults
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(FaultInjector(plan).enabled());
  plan.traceroute_loss_prob = 0.01;
  EXPECT_TRUE(plan.any());
  EXPECT_TRUE(FaultInjector(plan).enabled());
}

TEST(FaultInjector, DrawsAreDeterministicAndSiteSeparated) {
  FaultPlan plan;
  plan.set_all(0.5);
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  bool sites_differ = false;
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.draw(Site::kFeedOutage, i, 7), b.draw(Site::kFeedOutage, i, 7));
    EXPECT_EQ(a.mix(Site::kFeedOutage, i, 7), b.mix(Site::kFeedOutage, i, 7));
    sites_differ |= a.fires(Site::kFeedOutage, i, 7) !=
                    a.fires(Site::kFeedStale, i, 7);
  }
  EXPECT_TRUE(sites_differ) << "sites share one schedule — salt missing?";
}

TEST(FaultInjector, FiresMonotoneInRate) {
  // The core subset property: every fault fired at a low rate also fires
  // at any higher rate under the same seed. Exact, not statistical.
  FaultPlan low;
  low.set_all(0.1);
  FaultPlan high = low;
  high.set_all(0.4);
  const FaultInjector lo(low);
  const FaultInjector hi(high);
  std::size_t lo_count = 0;
  std::size_t hi_count = 0;
  for (std::uint64_t a = 0; a < 400; ++a) {
    for (const Site site : {Site::kFeedOutage, Site::kTracerouteLoss,
                            Site::kHoneypotDrop, Site::kDeployFailure}) {
      if (lo.fires(site, a, 1)) {
        ++lo_count;
        EXPECT_TRUE(hi.fires(site, a, 1))
            << "fault fired at 0.1 but not 0.4: site "
            << site_name(site) << " a=" << a;
      }
      hi_count += hi.fires(site, a, 1) ? 1 : 0;
    }
  }
  EXPECT_GT(lo_count, 0u);
  EXPECT_GT(hi_count, lo_count);
}

TEST(FaultInjector, DrawRateTracksProbability) {
  FaultPlan plan;
  plan.feed_outage_prob = 0.25;
  const FaultInjector injector(plan);
  std::size_t fired = 0;
  constexpr std::size_t kTrials = 4000;
  for (std::uint64_t a = 0; a < kTrials; ++a) {
    fired += injector.fires(Site::kFeedOutage, a, 0) ? 1 : 0;
  }
  const double rate = static_cast<double>(fired) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(FaultGrade, ThresholdsAndRetries) {
  FaultPlan plan;  // degraded_feed_fraction = degraded_trace_fraction = 0.05
  ConfigQuality q;
  EXPECT_EQ(grade_config(q, plan), Grade::kGood);
  q.deploy_attempts = 2;
  EXPECT_EQ(grade_config(q, plan), Grade::kDegraded);
  q.deploy_attempts = 1;
  q.feed_entries = 90;
  q.feed_faults = 10;  // 10% > 5%
  EXPECT_EQ(grade_config(q, plan), Grade::kDegraded);
  q.feed_faults = 2;  // ~2.2% below threshold
  EXPECT_EQ(grade_config(q, plan), Grade::kGood);
  q.traces = 100;
  q.trace_faults = 6;  // 6% > 5%
  EXPECT_EQ(grade_config(q, plan), Grade::kDegraded);
}

// ---------------------------------------------------------------------------
// Injection sites in isolation.
// ---------------------------------------------------------------------------

measure::FeedEntry entry(topology::AsId peer,
                         std::initializer_list<topology::Asn> path) {
  measure::FeedEntry e;
  e.peer = peer;
  e.as_path.assign(path);
  return e;
}

TEST(FeedFaults, DegradeDropsAndTruncatesMonotonically) {
  constexpr topology::Asn kOrigin = 47065;
  std::vector<measure::FeedEntry> clean;
  for (topology::AsId peer = 0; peer < 200; ++peer) {
    clean.push_back(entry(peer, {1000 + peer, 77, kOrigin, 666, kOrigin}));
  }

  FaultPlan lo_plan;
  lo_plan.feed_outage_prob = 0.1;
  lo_plan.feed_stale_prob = 0.1;
  FaultPlan hi_plan = lo_plan;
  hi_plan.feed_outage_prob = 0.4;
  hi_plan.feed_stale_prob = 0.4;

  std::uint32_t lo_faults = 0;
  std::uint32_t hi_faults = 0;
  const auto lo = measure::FeedSimulator::degrade(
      clean, FaultInjector(lo_plan), 3, kOrigin, &lo_faults);
  const auto hi = measure::FeedSimulator::degrade(
      clean, FaultInjector(hi_plan), 3, kOrigin, &hi_faults);

  EXPECT_LT(lo_faults, hi_faults);
  EXPECT_GT(lo_faults, 0u);
  // Peers surviving the high rate are a subset of those surviving the low
  // rate, and a peer staled at the low rate is also staled (or gone) at
  // the high rate.
  auto find_peer = [](const std::vector<measure::FeedEntry>& entries,
                      topology::AsId peer) -> const measure::FeedEntry* {
    for (const auto& e : entries) {
      if (e.peer == peer) return &e;
    }
    return nullptr;
  };
  for (const auto& e : hi) {
    ASSERT_NE(find_peer(lo, e.peer), nullptr)
        << "peer " << e.peer << " survived 0.4 but not 0.1";
  }
  for (const auto& e : lo) {
    if (const auto* h = find_peer(hi, e.peer)) {
      EXPECT_LE(h->as_path.size(), e.as_path.size());
    }
  }
  // Stale paths are truncated before the announcement seed: they keep the
  // peer but never contain the origin ASN.
  std::size_t stale = 0;
  for (const auto& e : lo) {
    if (e.as_path.size() < 5) {
      ++stale;
      EXPECT_EQ(e.as_path.front(), 1000 + e.peer);
      EXPECT_EQ(std::count(e.as_path.begin(), e.as_path.end(), kOrigin), 0);
    }
  }
  EXPECT_GT(stale, 0u);
}

TEST(FeedFaults, DisabledDegradeReturnsInputVerbatim) {
  constexpr topology::Asn kOrigin = 47065;
  std::vector<measure::FeedEntry> clean;
  for (topology::AsId peer = 0; peer < 20; ++peer) {
    clean.push_back(entry(peer, {1000 + peer, kOrigin}));
  }
  std::uint32_t faulted = 0;
  const auto out = measure::FeedSimulator::degrade(clean, FaultInjector{}, 0,
                                                   kOrigin, &faulted);
  EXPECT_EQ(faulted, 0u);
  ASSERT_EQ(out.size(), clean.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].peer, clean[i].peer);
    EXPECT_EQ(out[i].as_path, clean[i].as_path);
  }
}

TEST(HoneypotFaults, DropAndDuplicateBalanceTotals) {
  FaultPlan plan;
  plan.honeypot_drop_prob = 0.2;
  plan.honeypot_duplicate_prob = 0.2;
  const FaultInjector injector(plan);

  const auto payload = traffic::make_query_payload(traffic::AmpProtocol::kDnsAny);
  const auto packet = netcore::Datagram::make_udp(
      {203, 0, 113, 9}, measure::AddressPlan::experiment_target(), 4242,
      traffic::info(traffic::AmpProtocol::kDnsAny).udp_port, payload);

  traffic::AmpPotHoneypot pot(1);
  pot.set_fault_injector(&injector, 11);
  constexpr std::uint64_t kPackets = 500;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    pot.receive(0, packet, static_cast<double>(i));
  }
  EXPECT_GT(pot.fault_dropped(), 0u);
  EXPECT_GT(pot.fault_duplicated(), 0u);
  EXPECT_EQ(pot.total_packets(),
            kPackets - pot.fault_dropped() + pot.fault_duplicated());

  // Re-derive the schedule independently: the injector is stateless, so
  // accounting code never needs the honeypot's cooperation.
  std::uint64_t drops = 0;
  for (std::uint64_t seq = 0; seq < kPackets; ++seq) {
    drops += injector.fires(Site::kHoneypotDrop, 11, seq) ? 1 : 0;
  }
  EXPECT_EQ(pot.fault_dropped(), drops);
}

TEST(HoneypotFaults, NullInjectorIsIdentical) {
  const auto payload = traffic::make_query_payload(traffic::AmpProtocol::kDnsAny);
  const auto packet = netcore::Datagram::make_udp(
      {203, 0, 113, 9}, measure::AddressPlan::experiment_target(), 4242,
      traffic::info(traffic::AmpProtocol::kDnsAny).udp_port, payload);
  traffic::AmpPotHoneypot plain(2);
  traffic::AmpPotHoneypot wired(2);
  const FaultInjector disabled;
  wired.set_fault_injector(&disabled, 5);
  for (std::uint64_t i = 0; i < 50; ++i) {
    plain.receive(i % 2, packet, static_cast<double>(i));
    wired.receive(i % 2, packet, static_cast<double>(i));
  }
  EXPECT_EQ(plain.total_packets(), wired.total_packets());
  EXPECT_EQ(plain.responses_sent(), wired.responses_sent());
  EXPECT_EQ(wired.fault_dropped(), 0u);
  EXPECT_EQ(wired.fault_duplicated(), 0u);
}

// ---------------------------------------------------------------------------
// Deployment-level chaos: no-op, worker invariance, graceful degradation.
// ---------------------------------------------------------------------------

core::TestbedConfig chaos_testbed() {
  core::TestbedConfig config;
  config.seed = 23;
  config.tier1_count = 4;
  config.transit_count = 24;
  config.stub_count = 180;
  config.probe_count = 70;
  config.feed.peer_count = 40;
  config.traceroute_rounds = 2;
  return config;
}

std::vector<bgp::Configuration> chaos_plan(const core::PeeringTestbed& testbed,
                                           std::size_t n) {
  auto configs = testbed.generator().location_phase();
  configs.resize(std::min(n, configs.size()));
  return configs;
}

void expect_same_deployment(const core::DeploymentResult& a,
                            const core::DeploymentResult& b,
                            const char* what) {
  ASSERT_EQ(a.measured.size(), b.measured.size()) << what;
  for (std::size_t i = 0; i < a.measured.size(); ++i) {
    EXPECT_EQ(a.measured[i], b.measured[i]) << what << " config " << i;
  }
  EXPECT_EQ(a.sources, b.sources) << what;
  EXPECT_EQ(a.matrix, b.matrix) << what;
  EXPECT_EQ(a.mean_coverage, b.mean_coverage) << what;
  EXPECT_EQ(a.mean_multi_catchment, b.mean_multi_catchment) << what;
  ASSERT_EQ(a.quality.size(), b.quality.size()) << what;
  for (std::size_t i = 0; i < a.quality.size(); ++i) {
    EXPECT_EQ(a.quality[i], b.quality[i]) << what << " config " << i;
  }
}

TEST(FaultDeploy, ZeroRatePlanIsProvableNoOp) {
  // A fault plan with every probability at zero — even with a different
  // seed and budget — must be bit-identical to the default deployment.
  const core::TestbedConfig baseline = chaos_testbed();
  core::TestbedConfig zeroed = baseline;
  zeroed.faults.seed = 0xDEADBEEF;
  zeroed.faults.deploy_retry_budget = 9;

  const core::PeeringTestbed a(baseline);
  const core::PeeringTestbed b(zeroed);
  const auto plan = chaos_plan(a, 4);
  const auto ra = a.deploy(plan);
  const auto rb = b.deploy(plan);
  EXPECT_TRUE(ra.quality.empty());
  EXPECT_TRUE(rb.quality.empty());
  expect_same_deployment(ra, rb, "zero-rate");
}

TEST(FaultDeploy, NonzeroScheduleIsWorkerCountInvariant) {
  core::TestbedConfig config = chaos_testbed();
  config.faults.set_all(0.08);
  config.faults.deploy_failure_prob = 0.3;
  config.faults.deploy_retry_budget = 1;

  std::vector<core::DeploymentResult> runs;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    core::TestbedConfig c = config;
    c.measure_workers = workers;
    const core::PeeringTestbed testbed(c);
    runs.push_back(testbed.deploy(chaos_plan(testbed, 6)));
  }
  ASSERT_FALSE(runs[0].quality.empty());
  expect_same_deployment(runs[0], runs[1], "workers 1 vs 2");
  expect_same_deployment(runs[0], runs[2], "workers 1 vs 8");
}

TEST(FaultDeploy, DegradationIsMonotoneAndBounded) {
  // Sweep the fault rate upward under one seed. Every aggregate is
  // deterministic, and the monotone-subset property keeps the comparison
  // like-with-like: more faults can only remove or shorten measurements.
  const double rates[] = {0.0, 0.05, 0.2};
  std::vector<core::DeploymentResult> results;
  std::vector<std::size_t> config_counts;
  for (const double rate : rates) {
    core::TestbedConfig config = chaos_testbed();
    config.faults.set_all(rate);
    config.faults.deploy_failure_prob = 0.0;  // keep every config measured
    const core::PeeringTestbed testbed(config);
    const auto plan = chaos_plan(testbed, 5);
    config_counts.push_back(plan.size());
    results.push_back(testbed.deploy(plan));
  }

  for (std::size_t k = 0; k + 1 < results.size(); ++k) {
    // Coverage shrinks (or holds) as the rate grows, and never collapses
    // to nothing at these rates: degradation is graceful, not a cliff.
    EXPECT_LE(results[k + 1].mean_coverage, results[k].mean_coverage)
        << "rate " << rates[k + 1];
  }
  EXPECT_GT(results.back().mean_coverage, 0.0);
  EXPECT_FALSE(results.back().sources.empty());

  // Quality accounting: clean run grades everything good; faulty runs
  // count monotonically more fault events.
  ASSERT_EQ(results[1].quality.size(), config_counts[1]);
  std::uint64_t faults_mid = 0;
  std::uint64_t faults_high = 0;
  for (std::size_t i = 0; i < results[1].quality.size(); ++i) {
    const ConfigQuality& mid = results[1].quality[i];
    const ConfigQuality& high = results[2].quality[i];
    faults_mid += mid.feed_faults + mid.trace_faults;
    faults_high += high.feed_faults + high.trace_faults;
    EXPECT_LE(mid.feed_faults, high.feed_faults) << "config " << i;
    EXPECT_LE(mid.trace_faults, high.trace_faults) << "config " << i;
    EXPECT_EQ(mid.deploy_attempts, 1u);
  }
  EXPECT_GT(faults_mid, 0u);
  EXPECT_GT(faults_high, faults_mid);
}

TEST(FaultDeploy, AbandonedConfigsAreMissingNotEmptyVotes) {
  core::TestbedConfig config = chaos_testbed();
  config.faults.deploy_failure_prob = 0.55;
  config.faults.deploy_retry_budget = 0;  // abandon on first failure
  const core::PeeringTestbed testbed(config);
  const auto plan = chaos_plan(testbed, 6);
  const auto result = testbed.deploy(plan);

  ASSERT_EQ(result.quality.size(), plan.size());
  std::size_t failed = 0;
  std::size_t first_live = plan.size();
  for (std::size_t i = 0; i < result.quality.size(); ++i) {
    if (result.quality[i].grade == Grade::kFailed) {
      ++failed;
      // Missing measurement: nothing observed, whole matrix row missing.
      EXPECT_EQ(result.measured[i].covered_count, 0u);
      EXPECT_EQ(std::count(result.measured[i].observed.begin(),
                           result.measured[i].observed.end(), 1),
                0);
      for (std::size_t s = 0; s < result.sources.size(); ++s) {
        EXPECT_EQ(result.matrix.cell(i, s), bgp::kNoCatchment8)
            << "config " << i << " source " << s;
      }
    } else if (first_live == plan.size()) {
      first_live = i;
    }
  }
  ASSERT_GT(failed, 0u) << "rate 0.55 with budget 0 produced no failures";
  ASSERT_LT(failed, plan.size()) << "every config failed; weak test";
  // Quorum-aware baseline: sources anchor at the first *live* config.
  ASSERT_LT(first_live, plan.size());
  std::vector<topology::AsId> expected =
      measure::baseline_sources(result.measured[first_live]);
  EXPECT_EQ(result.sources, expected);
  // Ground truth is untouched by measurement-plane faults.
  EXPECT_EQ(result.truth.size(), plan.size());
  for (const auto& truth : result.truth) {
    EXPECT_EQ(truth.link_of.size(), testbed.graph().size());
  }
}

TEST(FaultDeploy, RetryBudgetRecoversTransientFailures) {
  // Same failure draws, different budgets: with a generous budget every
  // config that would be abandoned at budget 0 either recovers (kDegraded)
  // or still fails — never the reverse.
  core::TestbedConfig strict = chaos_testbed();
  strict.faults.deploy_failure_prob = 0.45;
  strict.faults.deploy_retry_budget = 0;
  core::TestbedConfig generous = strict;
  generous.faults.deploy_retry_budget = 4;

  const core::PeeringTestbed a(strict);
  const core::PeeringTestbed b(generous);
  const auto plan = chaos_plan(a, 6);
  const auto ra = a.deploy(plan);
  const auto rb = b.deploy(plan);
  ASSERT_EQ(ra.quality.size(), rb.quality.size());
  std::size_t recovered = 0;
  for (std::size_t i = 0; i < ra.quality.size(); ++i) {
    if (rb.quality[i].grade == Grade::kFailed) {
      EXPECT_EQ(ra.quality[i].grade, Grade::kFailed)
          << "config " << i << " failed with retries but not without";
    }
    if (ra.quality[i].grade == Grade::kFailed &&
        rb.quality[i].grade != Grade::kFailed) {
      ++recovered;
      EXPECT_GT(rb.quality[i].deploy_attempts, 1u);
      EXPECT_EQ(rb.quality[i].grade, Grade::kDegraded);
    }
  }
  EXPECT_GT(recovered, 0u) << "budget 4 recovered nothing at rate 0.45";
}

// ---------------------------------------------------------------------------
// Docs contract: every fault.* metric the code emits is documented in
// docs/faults.md (mirrors ObsDocsContract for docs/observability.md).
// ---------------------------------------------------------------------------

#ifdef SPOOFTRACK_SOURCE_DIR

TEST(FaultDocsContract, EveryEmittedFaultMetricIsDocumented) {
  const std::filesystem::path doc_path =
      std::filesystem::path(SPOOFTRACK_SOURCE_DIR) / "docs" / "faults.md";
  ASSERT_TRUE(std::filesystem::exists(doc_path)) << "docs/faults.md missing";
  std::ifstream in(doc_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();

  const std::regex call(R"re(OBS_(?:COUNT|GAUGE|HIST|TIMER)\(\s*"(fault\.[^"]+)")re");
  std::set<std::string> names;
  for (const char* dir : {"src", "bench", "tools"}) {
    const std::filesystem::path root =
        std::filesystem::path(SPOOFTRACK_SOURCE_DIR) / dir;
    for (const auto& file :
         std::filesystem::recursive_directory_iterator(root)) {
      const auto ext = file.path().extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      std::ifstream src(file.path());
      std::stringstream text;
      text << src.rdbuf();
      const std::string content = text.str();
      for (auto it = std::sregex_iterator(content.begin(), content.end(), call);
           it != std::sregex_iterator(); ++it) {
        names.insert((*it)[1].str());
      }
    }
  }
  ASSERT_FALSE(names.empty()) << "no fault.* call sites found — regex broken?";
  for (const std::string& name : names) {
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "metric '" << name
        << "' is emitted by the code but not documented (backticked) in "
           "docs/faults.md";
  }
}

#endif  // SPOOFTRACK_SOURCE_DIR

}  // namespace
}  // namespace spooftrack::fault
