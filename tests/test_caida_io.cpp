#include "topology/caida_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace spooftrack::topology {
namespace {

TEST(CaidaIo, ParsesSerial1) {
  std::istringstream in(
      "# inferred relationships\n"
      "3356|100|-1\n"
      "100|200|-1\n"
      "3356|174|0\n");
  const AsGraph g = read_caida(in);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.relationship(*g.id_of(3356), *g.id_of(100)), Rel::kCustomer);
  EXPECT_EQ(g.relationship(*g.id_of(3356), *g.id_of(174)), Rel::kPeer);
  EXPECT_TRUE(g.frozen());
}

TEST(CaidaIo, HandlesCrlfAndExtraFields) {
  std::istringstream in("1|2|-1|bgp\r\n2|3|0|mlp\r\n");
  const AsGraph g = read_caida(in);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(CaidaIo, RejectsMalformedLines) {
  {
    std::istringstream in("1|2\n");
    EXPECT_THROW(read_caida(in), std::invalid_argument);
  }
  {
    std::istringstream in("1|2|5\n");
    EXPECT_THROW(read_caida(in), std::invalid_argument);
  }
  {
    std::istringstream in("x|2|-1\n");
    EXPECT_THROW(read_caida(in), std::invalid_argument);
  }
}

TEST(CaidaIo, EmptyInputYieldsEmptyGraph) {
  std::istringstream in("# nothing here\n\n");
  const AsGraph g = read_caida(in);
  EXPECT_EQ(g.size(), 0u);
}

TEST(CaidaIo, WriteReadRoundTrip) {
  std::istringstream in(
      "10|100|-1\n"
      "10|11|0\n"
      "11|200|-1\n"
      "100|1001|-1\n");
  const AsGraph original = read_caida(in);

  std::ostringstream out;
  write_caida(original, out);
  std::istringstream back(out.str());
  const AsGraph reloaded = read_caida(back);

  EXPECT_EQ(reloaded.size(), original.size());
  EXPECT_EQ(reloaded.edge_count(), original.edge_count());
  for (AsId id = 0; id < original.size(); ++id) {
    const Asn asn = original.asn_of(id);
    const AsId rid = *reloaded.id_of(asn);
    for (const Neighbor& n : original.neighbors(id)) {
      const Asn other = original.asn_of(n.id);
      EXPECT_EQ(reloaded.relationship(rid, *reloaded.id_of(other)), n.rel);
    }
  }
}

TEST(CaidaIo, MissingFileThrows) {
  EXPECT_THROW(read_caida_file("/nonexistent/rel.txt"),
               std::invalid_argument);
}

}  // namespace
}  // namespace spooftrack::topology
