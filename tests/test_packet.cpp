#include "netcore/packet.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace spooftrack::netcore {
namespace {

const Ipv4Addr kSrc{192, 0, 2, 1};
const Ipv4Addr kDst{198, 51, 100, 7};

std::vector<std::uint8_t> payload_bytes() { return {0xde, 0xad, 0xbe, 0xef}; }

TEST(Datagram, BuildsValidUdpPacket) {
  const auto payload = payload_bytes();
  const auto d = Datagram::make_udp(kSrc, kDst, 1234, 53, payload);
  EXPECT_EQ(d.bytes().size(),
            kIpv4HeaderBytes + kUdpHeaderBytes + payload.size());

  const auto ip = d.ip();
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->source, kSrc);
  EXPECT_EQ(ip->destination, kDst);
  EXPECT_EQ(ip->protocol, kProtoUdp);
  EXPECT_EQ(ip->total_length, d.bytes().size());

  const auto udp = d.udp();
  ASSERT_TRUE(udp.has_value());
  EXPECT_EQ(udp->source_port, 1234);
  EXPECT_EQ(udp->destination_port, 53);
  EXPECT_EQ(udp->length, kUdpHeaderBytes + payload.size());
}

TEST(Datagram, PayloadRoundTrips) {
  const auto payload = payload_bytes();
  const auto d = Datagram::make_udp(kSrc, kDst, 1, 2, payload);
  const auto view = d.payload();
  ASSERT_EQ(view.size(), payload.size());
  EXPECT_TRUE(std::equal(view.begin(), view.end(), payload.begin()));
}

TEST(Datagram, UdpChecksumVerifies) {
  const auto payload = payload_bytes();
  const auto d = Datagram::make_udp(kSrc, kDst, 1234, 53, payload);
  const auto udp_bytes =
      std::span<const std::uint8_t>(d.bytes()).subspan(kIpv4HeaderBytes);
  EXPECT_TRUE(UdpHeader::verify(udp_bytes, kSrc, kDst));
  // Verification against the wrong pseudo-header (spoof check) fails.
  EXPECT_FALSE(UdpHeader::verify(udp_bytes, Ipv4Addr{1, 2, 3, 4}, kDst));
}

TEST(Ipv4HeaderTest, CorruptionIsDetected) {
  const auto d = Datagram::make_udp(kSrc, kDst, 1, 2, payload_bytes());
  auto bytes = d.bytes();
  bytes[13] ^= 0x40;  // flip a source-address bit
  EXPECT_FALSE(Ipv4Header::parse(bytes).has_value());
}

TEST(Ipv4HeaderTest, RejectsTruncatedAndNonV4) {
  std::vector<std::uint8_t> short_buf(10, 0);
  EXPECT_FALSE(Ipv4Header::parse(short_buf).has_value());
  auto d = Datagram::make_udp(kSrc, kDst, 1, 2, payload_bytes());
  auto bytes = d.bytes();
  bytes[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::parse(bytes).has_value());
}

TEST(Datagram, ForwardHopDecrementsTtlAndKeepsChecksumValid) {
  auto d = Datagram::make_udp(kSrc, kDst, 1, 2, payload_bytes(), 3);
  ASSERT_TRUE(d.ip().has_value());
  EXPECT_EQ(d.ip()->ttl, 3);
  EXPECT_TRUE(d.forward_hop());
  ASSERT_TRUE(d.ip().has_value()) << "checksum must be re-valid after hop";
  EXPECT_EQ(d.ip()->ttl, 2);
  EXPECT_TRUE(d.forward_hop());
  EXPECT_EQ(d.ip()->ttl, 1);
  // TTL 1 cannot be forwarded further.
  EXPECT_FALSE(d.forward_hop());
  EXPECT_EQ(d.ip()->ttl, 1);
}

TEST(Datagram, EmptyPayloadSupported) {
  const auto d = Datagram::make_udp(kSrc, kDst, 9, 9, {});
  ASSERT_TRUE(d.udp().has_value());
  EXPECT_EQ(d.udp()->length, kUdpHeaderBytes);
  EXPECT_TRUE(d.payload().empty());
  const auto udp_bytes =
      std::span<const std::uint8_t>(d.bytes()).subspan(kIpv4HeaderBytes);
  EXPECT_TRUE(UdpHeader::verify(udp_bytes, kSrc, kDst));
}

TEST(UdpHeaderTest, RejectsBadLengths) {
  std::vector<std::uint8_t> buf(8, 0);
  buf[4] = 0;
  buf[5] = 4;  // length 4 < header size
  EXPECT_FALSE(UdpHeader::parse(buf).has_value());
  buf[5] = 200;  // length beyond buffer
  EXPECT_FALSE(UdpHeader::parse(buf).has_value());
}

}  // namespace
}  // namespace spooftrack::netcore
