// Pinned equivalence of the parallel measurement driver: for any worker
// count, MeasurementDriver must produce byte-identical InferenceResults,
// equal to a straightforward serial composition of the pipeline stages
// (feed collect -> per-round traceroutes -> repair -> inference). Mirrors
// the scheduler equivalence pinning in test_catchment_store.cpp.
#include "measure/driver.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.hpp"
#include "util/rng.hpp"

namespace spooftrack::measure {
namespace {

core::TestbedConfig driver_testbed() {
  core::TestbedConfig config;
  config.seed = 23;
  config.tier1_count = 4;
  config.transit_count = 24;
  config.stub_count = 180;
  config.probe_count = 70;
  config.feed.peer_count = 40;
  config.traceroute_rounds = 2;
  return config;
}

class MeasureDriverTest : public ::testing::Test {
 protected:
  MeasureDriverTest()
      : testbed_(driver_testbed()),
        plan_(testbed_.graph()),
        ixps_(testbed_.graph(), 4, 0.5, 77),
        ip2as_(Ip2AsMap::from_plan(testbed_.graph(), plan_,
                                   core::kPeeringAsn, {0.05, 3})),
        feeds_(testbed_.graph(), {40, 0.6, 17}),
        tracer_(testbed_.graph(), plan_, ixps_, TracerouteOptions{}),
        repair_(testbed_.graph(), ip2as_, ixps_, core::kPeeringAsn),
        inference_(testbed_.graph(), testbed_.origin()) {}

  static constexpr std::uint32_t kRounds = 2;

  std::vector<MeasurementTask> make_tasks(
      const std::vector<bgp::Configuration>& configs) const {
    std::vector<MeasurementTask> tasks;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const auto outcome = testbed_.route(configs[i]);
      tasks.push_back(
          {i,
           std::make_shared<const std::vector<FeedEntry>>(
               feeds_.collect(outcome)),
           std::make_shared<const ProbePathSet>(ProbePathSet::extract(
               outcome, testbed_.probe_ases(), testbed_.origin_id()))});
    }
    return tasks;
  }

  /// The pre-driver inline pipeline, verbatim: per config, feeds +
  /// probe-major round-minor traceroutes salted with (config index, round),
  /// batch repair, inference.
  std::vector<InferenceResult> serial_reference(
      const std::vector<bgp::Configuration>& configs) const {
    std::vector<InferenceResult> results(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const auto outcome = testbed_.route(configs[i]);
      const auto feed_entries = feeds_.collect(outcome);
      std::vector<Traceroute> traces;
      traces.reserve(testbed_.probe_ases().size() * kRounds);
      for (topology::AsId probe : testbed_.probe_ases()) {
        for (std::uint32_t round = 0; round < kRounds; ++round) {
          traces.push_back(tracer_.run(outcome, probe, testbed_.origin_id(),
                                       util::hash_combine(i, round)));
        }
      }
      const auto paths = repair_.repair(traces, feed_entries);
      results[i] = inference_.infer(feed_entries, paths);
    }
    return results;
  }

  MeasurementDriver driver(std::size_t workers) const {
    MeasurementDriverOptions options;
    options.workers = workers;
    options.traceroute_rounds = kRounds;
    return MeasurementDriver(tracer_, repair_, inference_,
                             testbed_.probe_ases(), testbed_.origin_id(),
                             options);
  }

  core::PeeringTestbed testbed_;
  AddressPlan plan_;
  IxpTable ixps_;
  Ip2AsMap ip2as_;
  FeedSimulator feeds_;
  TracerouteSim tracer_;
  PathRepair repair_;
  CatchmentInference inference_;
};

TEST_F(MeasureDriverTest, MatchesSerialReferenceForAnyWorkerCount) {
  auto configs = testbed_.generator().location_phase();
  configs.resize(5);
  const auto reference = serial_reference(configs);
  const auto tasks = make_tasks(configs);

  for (const std::size_t workers : {1u, 2u, 8u}) {
    const auto results = driver(workers).run(tasks);
    ASSERT_EQ(results.size(), reference.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], reference[i])
          << "workers=" << workers << " config=" << i;
    }
  }
}

TEST_F(MeasureDriverTest, ScratchReuseAcrossTasksIsInert) {
  // The same task submitted twice through one worker slot must produce the
  // same result both times: nothing may leak between a slot's tasks.
  auto configs = testbed_.generator().location_phase();
  configs.resize(2);
  auto tasks = make_tasks(configs);
  const std::size_t n = tasks.size();
  for (std::size_t i = 0; i < n; ++i) {
    MeasurementTask copy = tasks[i];
    tasks.push_back(std::move(copy));
  }
  const auto results = driver(1).run(tasks);
  ASSERT_EQ(results.size(), 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(results[i], results[n + i]) << "task " << i;
  }
}

TEST_F(MeasureDriverTest, SharedSnapshotsAcrossTasksStayIndependent) {
  // Fan-out duplicates share feed/path snapshots but carry their own
  // config index: their traceroute rounds (and thus results) may differ,
  // and a shared snapshot must never alias results.
  auto configs = testbed_.generator().location_phase();
  configs.resize(1);
  auto tasks = make_tasks(configs);
  MeasurementTask duplicate = tasks[0];
  duplicate.config_index = 1;  // same outcome, different salt stream
  tasks.push_back(duplicate);

  const auto results = driver(2).run(tasks);
  ASSERT_EQ(results.size(), 2u);
  // Same snapshot, same pipeline: coverage statistics agree in
  // distribution, and results for the *same* index are reproducible.
  const auto again = driver(1).run(tasks);
  EXPECT_EQ(results[0], again[0]);
  EXPECT_EQ(results[1], again[1]);
}

TEST_F(MeasureDriverTest, EmptyTaskListYieldsNoResults) {
  EXPECT_TRUE(driver(4).run({}).empty());
}

TEST_F(MeasureDriverTest, ProbePathSetMatchesForwardingPaths) {
  auto configs = testbed_.generator().location_phase();
  configs.resize(1);
  const auto outcome = testbed_.route(configs[0]);
  const auto set = ProbePathSet::extract(outcome, testbed_.probe_ases(),
                                         testbed_.origin_id());
  ASSERT_EQ(set.offsets.size(), testbed_.probe_ases().size() + 1);
  for (std::size_t p = 0; p < testbed_.probe_ases().size(); ++p) {
    const auto expect = bgp::forwarding_path(
        outcome, testbed_.probe_ases()[p], testbed_.origin_id());
    const auto got = set.path(p);
    ASSERT_EQ(got.size(), expect.size()) << "probe " << p;
    for (std::size_t h = 0; h < got.size(); ++h) {
      EXPECT_EQ(got[h], expect[h]) << "probe " << p << " hop " << h;
    }
  }
}

TEST(MeasureDriverDeploy, WorkerCountNeverChangesDeployment) {
  core::TestbedConfig config = driver_testbed();
  config.measured_catchments = true;

  core::TestbedConfig serial = config;
  serial.measure_workers = 1;
  core::TestbedConfig wide = config;
  wide.measure_workers = 8;

  const core::PeeringTestbed a(serial);
  const core::PeeringTestbed b(wide);
  auto configs = a.generator().location_phase();
  configs.resize(3);

  const auto ra = a.deploy(configs);
  const auto rb = b.deploy(configs);
  ASSERT_EQ(ra.measured.size(), rb.measured.size());
  for (std::size_t i = 0; i < ra.measured.size(); ++i) {
    EXPECT_EQ(ra.measured[i], rb.measured[i]) << "config " << i;
  }
  EXPECT_EQ(ra.sources, rb.sources);
  EXPECT_EQ(ra.matrix, rb.matrix);
  EXPECT_EQ(ra.mean_coverage, rb.mean_coverage);
  EXPECT_EQ(ra.mean_multi_catchment, rb.mean_multi_catchment);
}

}  // namespace
}  // namespace spooftrack::measure
