#include "netcore/ipv4.hpp"

#include <gtest/gtest.h>

namespace spooftrack::netcore {
namespace {

TEST(Ipv4Addr, RoundTripsDottedQuad) {
  const auto addr = Ipv4Addr::parse("192.168.1.42");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->to_string(), "192.168.1.42");
  EXPECT_EQ(addr->value(), 0xC0A8012Au);
}

TEST(Ipv4Addr, OctetAccessors) {
  const Ipv4Addr addr{10, 20, 30, 40};
  EXPECT_EQ(addr.octet(0), 10);
  EXPECT_EQ(addr.octet(1), 20);
  EXPECT_EQ(addr.octet(2), 30);
  EXPECT_EQ(addr.octet(3), 40);
}

TEST(Ipv4Addr, ParsesBoundaryValues) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

struct BadInput {
  const char* text;
};

class Ipv4ParseRejects : public ::testing::TestWithParam<BadInput> {};

TEST_P(Ipv4ParseRejects, Rejects) {
  EXPECT_FALSE(Ipv4Addr::parse(GetParam().text).has_value())
      << "accepted: " << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, Ipv4ParseRejects,
    ::testing::Values(BadInput{""}, BadInput{"1.2.3"}, BadInput{"1.2.3.4.5"},
                      BadInput{"256.1.1.1"}, BadInput{"1.2.3.999"},
                      BadInput{"01.2.3.4"}, BadInput{"1.2.3.4 "},
                      BadInput{" 1.2.3.4"}, BadInput{"a.b.c.d"},
                      BadInput{"1..2.3"}, BadInput{"1.2.3.-4"},
                      BadInput{"1.2.3.4/8"}));

TEST(Ipv4Addr, ClassifiesSpecialRanges) {
  EXPECT_TRUE(Ipv4Addr(10, 0, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Addr(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Addr(172, 31, 255, 255).is_private());
  EXPECT_FALSE(Ipv4Addr(172, 32, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Addr(192, 168, 5, 5).is_private());
  EXPECT_FALSE(Ipv4Addr(192, 169, 5, 5).is_private());
  EXPECT_TRUE(Ipv4Addr(127, 0, 0, 1).is_loopback());
  EXPECT_TRUE(Ipv4Addr(224, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Ipv4Addr(239, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Addr(8, 8, 8, 8).is_private());
}

TEST(Ipv4Addr, OrdersNumerically) {
  EXPECT_LT(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(1, 2, 3, 5));
  EXPECT_LT(Ipv4Addr(9, 255, 255, 255), Ipv4Addr(10, 0, 0, 0));
}

}  // namespace
}  // namespace spooftrack::netcore
