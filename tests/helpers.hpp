// Shared fixtures for spooftrack tests: a small hand-built topology with
// known catchment behaviour, and convenience builders.
//
//     t1 ===peer=== t2            (tier-1 clique)
//     |- p1, c                    (t1's customers)
//     t2 |- p2, e                 (t2's customers)
//     p1 |- a, d, origin          (d multihomes to p1 and p2)
//     p2 |- b, d, origin          (origin 47065 is customer of p1 and p2)
#pragma once

#include <vector>

#include "bgp/announcement.hpp"
#include "bgp/engine.hpp"
#include "bgp/policy.hpp"
#include "topology/as_graph.hpp"

namespace spooftrack::test {

inline constexpr topology::Asn kOrigin = 47065;
inline constexpr topology::Asn kT1 = 10;
inline constexpr topology::Asn kT2 = 11;
inline constexpr topology::Asn kP1 = 100;
inline constexpr topology::Asn kP2 = 200;
inline constexpr topology::Asn kA = 1001;  // stub under p1
inline constexpr topology::Asn kB = 1002;  // stub under p2
inline constexpr topology::Asn kC = 1003;  // stub under t1
inline constexpr topology::Asn kD = 1004;  // multihomed under p1 and p2
inline constexpr topology::Asn kE = 1005;  // stub under t2

/// Builds the diagram topology (frozen).
inline topology::AsGraph small_topology() {
  topology::AsGraph g;
  g.add_p2p(kT1, kT2);
  g.add_p2c(kT1, kP1);
  g.add_p2c(kT2, kP2);
  g.add_p2c(kT1, kC);
  g.add_p2c(kT2, kE);
  g.add_p2c(kP1, kA);
  g.add_p2c(kP2, kB);
  g.add_p2c(kP1, kD);
  g.add_p2c(kP2, kD);
  g.add_p2c(kP1, kOrigin);
  g.add_p2c(kP2, kOrigin);
  g.freeze();
  return g;
}

/// Origin with two links: link 0 via p1, link 1 via p2.
inline bgp::OriginSpec small_origin() {
  bgp::OriginSpec origin;
  origin.asn = kOrigin;
  origin.links.push_back({0, "pop-p1", kP1});
  origin.links.push_back({1, "pop-p2", kP2});
  return origin;
}

/// Policy with no random deviations (pure Gao-Rexford + tier-1 filter).
inline bgp::PolicyConfig clean_policy_config() {
  bgp::PolicyConfig config;
  config.ignore_poison_fraction = 0.0;
  config.shortest_violator_fraction = 0.0;
  config.peer_provider_swap_fraction = 0.0;
  return config;
}

/// Announce from every link, no prepending, no poisoning.
inline bgp::Configuration announce_all(std::size_t links) {
  bgp::Configuration config;
  config.label = "all";
  for (std::size_t l = 0; l < links; ++l) {
    config.announcements.push_back(
        {static_cast<bgp::LinkId>(l), 0, {}, {}});
  }
  return config;
}

}  // namespace spooftrack::test
