#include "traffic/background.hpp"

#include <gtest/gtest.h>

#include "bgp/catchment.hpp"
#include "helpers.hpp"

namespace spooftrack::traffic {
namespace {

class BackgroundTest : public ::testing::Test {
 protected:
  BackgroundTest()
      : graph_(test::small_topology()),
        policy_(graph_, test::clean_policy_config()),
        engine_(graph_, policy_),
        origin_(test::small_origin()),
        plan_(graph_) {}

  bgp::CatchmentMap catchments() {
    const auto config = test::announce_all(2);
    const auto outcome = engine_.run(origin_, config);
    return bgp::extract_catchments(outcome, config);
  }

  topology::AsGraph graph_;
  bgp::RoutingPolicy policy_;
  bgp::Engine engine_;
  bgp::OriginSpec origin_;
  measure::AddressPlan plan_;
};

TEST_F(BackgroundTest, ActivityIsPersistentAndFractional) {
  BackgroundOptions options;
  options.active_fraction = 1.0;
  const BackgroundTrafficModel all(graph_, plan_, options);
  EXPECT_EQ(all.active_count(), graph_.size());

  options.active_fraction = 0.0;
  const BackgroundTrafficModel none(graph_, plan_, options);
  EXPECT_EQ(none.active_count(), 0u);

  options.active_fraction = 0.5;
  const BackgroundTrafficModel half_a(graph_, plan_, options);
  const BackgroundTrafficModel half_b(graph_, plan_, options);
  for (topology::AsId id = 0; id < graph_.size(); ++id) {
    EXPECT_EQ(half_a.active(id), half_b.active(id));
  }
}

TEST_F(BackgroundTest, ClientAddressesBelongToTheAs) {
  const BackgroundTrafficModel model(graph_, plan_, {});
  for (topology::AsId id = 0; id < graph_.size(); ++id) {
    for (std::uint32_t host = 0; host < 3; ++host) {
      EXPECT_TRUE(plan_.prefix_of(id).contains(model.client_address(id, host)));
    }
  }
  EXPECT_NE(model.client_address(0, 0), model.client_address(0, 1));
}

TEST_F(BackgroundTest, GeneratedPacketsArriveOnCatchmentLinks) {
  BackgroundOptions options;
  options.active_fraction = 1.0;
  const BackgroundTrafficModel model(graph_, plan_, options);
  const auto map = catchments();
  const auto arrivals = model.generate(map, 0);
  ASSERT_FALSE(arrivals.empty());
  for (const auto& arrived : arrivals) {
    EXPECT_EQ(arrived.link, map[arrived.true_source]);
    const auto ip = arrived.datagram.ip();
    ASSERT_TRUE(ip.has_value());
    // Legitimate: the source address really belongs to the sender AS.
    EXPECT_TRUE(plan_.prefix_of(arrived.true_source).contains(ip->source));
  }
}

TEST_F(BackgroundTest, TrainedClassifierAcceptsLegitRejectsSpoofed) {
  BackgroundOptions options;
  options.active_fraction = 1.0;
  const BackgroundTrafficModel model(graph_, plan_, options);
  const auto map = catchments();

  ValidSourceInference inference;
  model.train(inference, map);

  // Legitimate traffic classifies clean.
  for (const auto& arrived : model.generate(map, 7)) {
    const auto ip = arrived.datagram.ip();
    EXPECT_EQ(inference.classify(arrived.link, ip->source),
              SourceVerdict::kLegitimate);
  }

  // A spoofed packet (source = a's space) arriving on the wrong link.
  const auto a_id = *graph_.id_of(test::kA);
  const auto a_addr = model.client_address(a_id, 0);
  const bgp::LinkId wrong = map[a_id] == 0 ? 1 : 0;
  EXPECT_EQ(inference.classify(wrong, a_addr),
            SourceVerdict::kSpoofedWrongLink);
  // An unknown prefix is flagged outright.
  EXPECT_EQ(inference.classify(0, netcore::Ipv4Addr{203, 0, 113, 1}),
            SourceVerdict::kSpoofedUnknownSource);
}

TEST_F(BackgroundTest, InactiveAsesProduceNothing) {
  BackgroundOptions options;
  options.active_fraction = 0.0;
  const BackgroundTrafficModel model(graph_, plan_, options);
  EXPECT_TRUE(model.generate(catchments(), 1).empty());
}

TEST_F(BackgroundTest, SaltVariesVolumeDeterministically) {
  BackgroundOptions options;
  options.active_fraction = 1.0;
  const BackgroundTrafficModel model(graph_, plan_, options);
  const auto map = catchments();
  const auto a = model.generate(map, 1);
  const auto b = model.generate(map, 1);
  EXPECT_EQ(a.size(), b.size());
}

}  // namespace
}  // namespace spooftrack::traffic
