// Unit tests of the §IV-b traceroute repair pipeline on hand-crafted traces.
#include "measure/repair.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace spooftrack::measure {
namespace {

class RepairTest : public ::testing::Test {
 protected:
  RepairTest()
      : graph_(test::small_topology()),
        plan_(graph_),
        ixps_(graph_, 1, 0.0, 5),
        ip2as_(Ip2AsMap::from_plan(graph_, plan_, test::kOrigin, {0.0, 1})),
        repair_(graph_, ip2as_, ixps_, test::kOrigin) {}

  topology::AsId id(topology::Asn asn) const { return *graph_.id_of(asn); }

  netcore::Ipv4Addr router(topology::Asn asn, std::uint32_t k = 0) const {
    return plan_.router_address(id(asn), k);
  }

  Traceroute trace_of(topology::Asn probe,
                      std::vector<std::optional<netcore::Ipv4Addr>> hops,
                      bool reached = true) const {
    Traceroute t;
    t.probe = id(probe);
    for (auto& h : hops) t.hops.push_back({h});
    t.reached = reached;
    return t;
  }

  topology::AsGraph graph_;
  AddressPlan plan_;
  IxpTable ixps_;
  Ip2AsMap ip2as_;
  PathRepair repair_;
};

TEST_F(RepairTest, CleanTraceMapsDirectly) {
  const auto t = trace_of(
      test::kC, {router(test::kC), router(test::kT1), router(test::kP1),
                 AddressPlan::experiment_target()});
  const auto path = repair_.map_only(t);
  EXPECT_TRUE(path.complete);
  EXPECT_EQ(path.path, (std::vector<topology::Asn>{test::kC, test::kT1,
                                                   test::kP1, test::kOrigin}));
}

TEST_F(RepairTest, ConsecutiveSameAsHopsCollapse) {
  const auto t = trace_of(
      test::kC, {router(test::kC), router(test::kT1, 0), router(test::kT1, 1),
                 router(test::kP1), AddressPlan::experiment_target()});
  const auto path = repair_.map_only(t);
  EXPECT_EQ(path.path, (std::vector<topology::Asn>{test::kC, test::kT1,
                                                   test::kP1, test::kOrigin}));
}

TEST_F(RepairTest, UnresponsiveGapWithSameAsSidesBridged) {
  const auto t = trace_of(
      test::kC, {router(test::kC), router(test::kT1, 0), std::nullopt,
                 router(test::kT1, 1), router(test::kP1),
                 AddressPlan::experiment_target()});
  const auto path = repair_.map_only(t);
  EXPECT_TRUE(path.complete);
  EXPECT_EQ(path.path, (std::vector<topology::Asn>{test::kC, test::kT1,
                                                   test::kP1, test::kOrigin}));
}

TEST_F(RepairTest, Step2SubstitutesFromOtherTraces) {
  // Trace A is complete; trace B has an unresponsive run between the same
  // surrounding addresses, and must inherit A's interior.
  const auto complete = trace_of(
      test::kC, {router(test::kC), router(test::kT1), router(test::kP1),
                 AddressPlan::experiment_target()});
  const auto gappy = trace_of(
      test::kC, {router(test::kC), std::nullopt, std::nullopt,
                 AddressPlan::experiment_target()});
  const std::vector<Traceroute> batch = {complete, gappy};
  const auto repaired = repair_.repair(batch, {});
  ASSERT_EQ(repaired.size(), 2u);
  EXPECT_EQ(repaired[1].path, repaired[0].path);
  EXPECT_TRUE(repaired[1].complete);
}

TEST_F(RepairTest, Step2RefusesConflictingInteriors) {
  // Two different interiors between the same endpoints: no substitution.
  const auto via_t1 = trace_of(
      test::kC, {router(test::kC), router(test::kT1),
                 AddressPlan::experiment_target()});
  const auto via_t2 = trace_of(
      test::kC, {router(test::kC), router(test::kT2),
                 AddressPlan::experiment_target()});
  const auto gappy = trace_of(
      test::kC,
      {router(test::kC), std::nullopt, AddressPlan::experiment_target()});
  const std::vector<Traceroute> batch = {via_t1, via_t2, gappy};
  const auto repaired = repair_.repair(batch, {});
  // The gap cannot be bridged by step 2; sides differ (kC vs origin), and
  // no feeds were given, so the unknown hop is dropped.
  EXPECT_EQ(repaired[2].path,
            (std::vector<topology::Asn>{test::kC, test::kOrigin}));
}

TEST_F(RepairTest, Step4FillsAsGapsFromFeeds) {
  // Gap between c and p1 (different ASes): the feed path c t1 p1 origin
  // supplies the unique interior t1.
  FeedEntry feed;
  feed.peer = id(test::kC);
  feed.as_path = {test::kC, test::kT1, test::kP1, test::kOrigin};
  const auto gappy = trace_of(
      test::kC, {router(test::kC), std::nullopt, router(test::kP1),
                 AddressPlan::experiment_target()});
  const std::vector<Traceroute> batch = {gappy};
  const std::vector<FeedEntry> feeds = {feed};
  const auto repaired = repair_.repair(batch, feeds);
  EXPECT_EQ(repaired[0].path,
            (std::vector<topology::Asn>{test::kC, test::kT1, test::kP1,
                                        test::kOrigin}));
}

TEST_F(RepairTest, OriginSandwichNeverRecordedAsFeedInterior) {
  // A poisoned announcement puts the origin mid-path in feed exports:
  // c t1 ORIGIN t2 p1 ORIGIN. Interiors crossing the origin are encoding
  // artifacts, so the feed index must never bridge a gap through them —
  // even though (t1, t2) and (c, p1) have unique "interiors" in this feed.
  FeedEntry feed;
  feed.peer = id(test::kC);
  feed.as_path = {test::kC, test::kT1, test::kOrigin,
                  test::kT2, test::kP1, test::kOrigin};
  const std::vector<FeedEntry> feeds = {feed};

  // Gap between c and t2: the only feed route between them crosses the
  // origin, so it must stay unbridged (unknown hop dropped, step 5).
  const auto gappy = trace_of(
      test::kC, {router(test::kC), std::nullopt, router(test::kT2),
                 AddressPlan::experiment_target()});
  const auto repaired = repair_.repair(std::vector<Traceroute>{gappy}, feeds);
  ASSERT_EQ(repaired.size(), 1u);
  EXPECT_EQ(repaired[0].path,
            (std::vector<topology::Asn>{test::kC, test::kT2, test::kOrigin}));
  // The origin never materializes mid-path from the sandwich.
  for (std::size_t h = 0; h + 1 < repaired[0].path.size(); ++h) {
    EXPECT_NE(repaired[0].path[h], test::kOrigin);
  }
}

TEST_F(RepairTest, FeedInteriorsBeforeTheOriginStillBridge) {
  // The sandwich break must not be overeager: the pair (c -> origin) with
  // interior {t1} terminates at the origin without crossing it, and stays
  // usable for step 4.
  FeedEntry feed;
  feed.peer = id(test::kC);
  feed.as_path = {test::kC, test::kT1, test::kOrigin,
                  test::kT2, test::kP1, test::kOrigin};
  const std::vector<FeedEntry> feeds = {feed};
  const auto gappy = trace_of(
      test::kC, {router(test::kC), std::nullopt,
                 AddressPlan::experiment_target()});
  const auto repaired = repair_.repair(std::vector<Traceroute>{gappy}, feeds);
  ASSERT_EQ(repaired.size(), 1u);
  EXPECT_TRUE(repaired[0].complete);
  EXPECT_EQ(repaired[0].path,
            (std::vector<topology::Asn>{test::kC, test::kT1, test::kOrigin}));
}

TEST_F(RepairTest, ScratchReuseAcrossBatchesMatchesFreshScratch) {
  const auto complete = trace_of(
      test::kC, {router(test::kC), router(test::kT1), router(test::kP1),
                 AddressPlan::experiment_target()});
  const auto gappy = trace_of(
      test::kC, {router(test::kC), std::nullopt, std::nullopt,
                 AddressPlan::experiment_target()});
  const std::vector<Traceroute> batch_a = {complete, gappy};
  const std::vector<Traceroute> batch_b = {gappy};

  PathRepair::Scratch scratch;
  std::vector<AsLevelPath> out;
  repair_.repair(batch_a, {}, scratch, out);
  EXPECT_EQ(out, repair_.repair(batch_a, {}));
  // Batch B must not see batch A's index: the gap has no donor now, so
  // the interior hops are dropped instead of inherited from batch A.
  repair_.repair(batch_b, {}, scratch, out);
  EXPECT_EQ(out, repair_.repair(batch_b, {}));
  EXPECT_EQ(out[0].path,
            (std::vector<topology::Asn>{test::kC, test::kOrigin}));
}

TEST_F(RepairTest, UnknownHopsDroppedWhenUnresolvable) {
  const auto t = trace_of(
      test::kC, {router(test::kC), std::nullopt, router(test::kP1),
                 AddressPlan::experiment_target()});
  const auto path = repair_.map_only(t);
  EXPECT_EQ(path.path, (std::vector<topology::Asn>{test::kC, test::kP1,
                                                   test::kOrigin}));
}

TEST_F(RepairTest, IxpHopsAreDropped) {
  IxpTable all_ixp(graph_, 1, 1.0, 5);
  PathRepair repair(graph_, ip2as_, all_ixp, test::kOrigin);
  const auto t = trace_of(
      test::kC, {router(test::kC), all_ixp.member_address(0, id(test::kT1)),
                 router(test::kT1), router(test::kP1),
                 AddressPlan::experiment_target()});
  const auto path = repair.map_only(t);
  EXPECT_EQ(path.path, (std::vector<topology::Asn>{test::kC, test::kT1,
                                                   test::kP1, test::kOrigin}));
}

TEST_F(RepairTest, IncompleteTraceFlagged) {
  const auto t = trace_of(test::kC, {router(test::kC), router(test::kT1)},
                          false);
  const auto path = repair_.map_only(t);
  EXPECT_FALSE(path.complete);
  EXPECT_EQ(path.path.back(), test::kT1);
}

TEST_F(RepairTest, ProbeAsAlwaysAnchorsThePath) {
  // Even when the probe's own hops are unresponsive, the path starts at
  // the probe AS (known from probe metadata).
  const auto t = trace_of(
      test::kC, {std::nullopt, router(test::kP1),
                 AddressPlan::experiment_target()});
  const auto path = repair_.map_only(t);
  ASSERT_FALSE(path.path.empty());
  EXPECT_EQ(path.path.front(), test::kC);
}

TEST_F(RepairTest, EmptyTraceYieldsProbeOnly) {
  Traceroute t;
  t.probe = id(test::kA);
  const auto path = repair_.map_only(t);
  EXPECT_EQ(path.path, (std::vector<topology::Asn>{test::kA}));
  EXPECT_FALSE(path.complete);
}

}  // namespace
}  // namespace spooftrack::measure
