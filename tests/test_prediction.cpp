#include "core/prediction.hpp"

#include <gtest/gtest.h>

#include "bgp/catchment.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "helpers.hpp"

namespace spooftrack::core {
namespace {

ConfigDescriptor descriptor(std::uint32_t active, std::uint32_t prepended = 0) {
  ConfigDescriptor d;
  d.active_mask = active;
  d.prepend_mask = prepended;
  return d;
}

TEST(ConfigDescriptorTest, FromConfiguration) {
  bgp::Configuration config;
  config.announcements.push_back({0, 0, {}, {}});
  config.announcements.push_back({2, 4, {}, {}});
  const auto d = ConfigDescriptor::from(config);
  EXPECT_EQ(d.active_mask, 0b101u);
  EXPECT_EQ(d.prepend_mask, 0b100u);
  EXPECT_TRUE(d.active(0));
  EXPECT_FALSE(d.active(1));
  EXPECT_TRUE(d.prepended(2));
}

TEST(Predictor, UnseenSourceIsUnpredictable) {
  CatchmentPredictor predictor(3, 4);
  EXPECT_EQ(predictor.predict(descriptor(0b1111), 0), bgp::kNoCatchment);
}

TEST(Predictor, LearnsTotalOrderFromObservations) {
  CatchmentPredictor predictor(1, 3);
  // Source prefers link 0 > link 1 > link 2.
  predictor.observe(descriptor(0b111), std::vector<bgp::LinkId>{0});
  predictor.observe(descriptor(0b110), std::vector<bgp::LinkId>{1});
  EXPECT_EQ(predictor.predict(descriptor(0b111), 0), 0u);
  EXPECT_EQ(predictor.predict(descriptor(0b110), 0), 1u);
  EXPECT_EQ(predictor.predict(descriptor(0b100), 0), 2u);
  EXPECT_EQ(predictor.observed_configs(), 2u);
}

TEST(Predictor, PrependedLinksAreDemoted) {
  CatchmentPredictor predictor(1, 2);
  predictor.observe(descriptor(0b11), std::vector<bgp::LinkId>{0});
  // Prepending the preferred link 0 demotes it behind link 1.
  EXPECT_EQ(predictor.predict(descriptor(0b11, 0b01), 0), 1u);
  // Unless the source's history shows link 0 dominates... it doesn't
  // (we never saw it win against an unprepended alternative while itself
  // prepended), so the demotion stands. When everything is prepended the
  // first tier falls back to all active links.
  EXPECT_EQ(predictor.predict(descriptor(0b11, 0b11), 0), 0u);
}

TEST(Predictor, LocalPrefOverrideKeepsDominantLink) {
  CatchmentPredictor predictor(1, 2);
  // Source keeps link 0 even while link 0 is prepended (LocalPref-style
  // loyalty observed twice), and never chooses link 1.
  predictor.observe(descriptor(0b11, 0b01), std::vector<bgp::LinkId>{0});
  predictor.observe(descriptor(0b11, 0b01), std::vector<bgp::LinkId>{0});
  EXPECT_EQ(predictor.predict(descriptor(0b11, 0b01), 0), 0u);
}

TEST(Predictor, AccuracyCountsNonMissingCells) {
  CatchmentPredictor predictor(2, 2);
  predictor.observe(descriptor(0b11),
                    std::vector<bgp::LinkId>{0, 1});
  const std::vector<bgp::LinkId> actual{0, bgp::kNoCatchment};
  EXPECT_DOUBLE_EQ(predictor.accuracy(descriptor(0b11), actual), 1.0);
  const std::vector<bgp::LinkId> wrong{1, bgp::kNoCatchment};
  EXPECT_DOUBLE_EQ(predictor.accuracy(descriptor(0b11), wrong), 0.0);
}

TEST(Predictor, RejectsMismatchedRow) {
  CatchmentPredictor predictor(2, 2);
  EXPECT_THROW(
      predictor.observe(descriptor(0b11), std::vector<bgp::LinkId>{0}),
      std::invalid_argument);
  EXPECT_THROW(CatchmentPredictor(1, 64), std::invalid_argument);
}

TEST(Predictor, HighAccuracyOnHeldOutTestbedConfigs) {
  // Train on the location phase minus a holdout, predict the holdout.
  core::TestbedConfig config;
  config.seed = 31;
  config.stub_count = 300;
  config.transit_count = 40;
  config.tier1_count = 5;
  config.measured_catchments = false;
  const PeeringTestbed testbed(config);
  auto plan = testbed.generator().location_phase();
  const auto deployment = testbed.deploy(plan);

  CatchmentPredictor predictor(deployment.sources.size(), 7);
  // Hold out every 5th configuration.
  std::vector<std::size_t> holdout;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (i % 5 == 2) {
      holdout.push_back(i);
    } else {
      predictor.observe(ConfigDescriptor::from(plan[i]),
                        deployment.matrix[i]);
    }
  }
  util::Accumulator acc;
  for (std::size_t i : holdout) {
    acc.add(predictor.accuracy(ConfigDescriptor::from(plan[i]),
                               deployment.matrix[i]));
  }
  EXPECT_GT(acc.mean(), 0.85) << "predictor should generalise across "
                                 "location subsets";
}

}  // namespace
}  // namespace spooftrack::core
