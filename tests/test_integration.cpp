// End-to-end test: the paper's headline scenario. A single AS sources
// spoofed amplification queries; the origin deploys announcement
// configurations, correlates per-link honeypot volumes with clusters, and
// must localize the spoofer to a small cluster containing it.
#include <gtest/gtest.h>

#include "core/attribution.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "obs/obs.hpp"
#include "traffic/honeypot.hpp"
#include "traffic/spoofer.hpp"
#include "traffic/valid_source.hpp"

namespace spooftrack {
namespace {

std::uint64_t saturated_votes() {
  const auto* metric = obs::Registry::global().snapshot().find(
      "measure.inference.votes_saturated");
  return metric == nullptr ? 0 : metric->value;
}

core::TestbedConfig testbed_config() {
  core::TestbedConfig config;
  config.seed = 21;
  config.tier1_count = 5;
  config.transit_count = 40;
  config.stub_count = 500;
  config.measured_catchments = false;  // ground truth keeps the test tight
  return config;
}

TEST(EndToEnd, LocalizesSingleSpoofer) {
  const core::PeeringTestbed testbed(testbed_config());

  core::GeneratorOptions gen_options;
  gen_options.max_removals = 2;
  gen_options.max_poison_configs = 40;
  auto plan = testbed.generator(gen_options).full_plan(testbed.graph());
  const auto deployment = testbed.deploy(std::move(plan));
  const auto clustering = core::cluster_sources(deployment.matrix);

  // Pick a deterministic attacker sitting in a singleton cluster (most
  // clusters are singletons; large clusters are structurally
  // indistinguishable sets where per-AS localization is impossible).
  const auto cluster_sizes = clustering.sizes();
  std::size_t attacker_index = deployment.sources.size();
  for (std::size_t s = deployment.sources.size() / 2;
       s < deployment.sources.size(); ++s) {
    if (cluster_sizes[clustering.cluster_of[s]] == 1) {
      attacker_index = s;
      break;
    }
  }
  ASSERT_LT(attacker_index, deployment.sources.size())
      << "no singleton cluster found";
  const topology::AsId attacker = deployment.sources[attacker_index];

  // Per configuration, the honeypot observes spoofed volume per link.
  traffic::SpoofedTrafficGenerator gen(99);
  const netcore::Ipv4Addr victim{203, 0, 113, 77};
  std::vector<std::vector<double>> volumes;
  for (std::size_t c = 0; c < deployment.configs.size(); ++c) {
    traffic::AmpPotHoneypot pot(testbed.origin().links.size());
    traffic::SpoofedFlow flow;
    flow.source_as = attacker;
    flow.victim = victim;
    flow.protocol = traffic::AmpProtocol::kDnsAny;
    flow.packets_per_second = 50.0;
    const auto arrivals =
        gen.deliver({flow}, deployment.truth[c], 1.0, 100);
    for (const auto& arrived : arrivals) {
      pot.receive(arrived.link, arrived.datagram, arrived.timestamp);
    }
    volumes.push_back(pot.volume_by_link());
  }

  const auto attribution =
      core::attribute_clusters(deployment.matrix, clustering, volumes);
  ASSERT_FALSE(attribution.ranking.empty());

  // The top-ranked cluster must contain the attacker.
  const std::uint32_t top = attribution.ranking.front();
  EXPECT_EQ(clustering.cluster_of[attacker_index], top);

  // And localization is exact: the winning cluster is the singleton.
  EXPECT_EQ(cluster_sizes[top], 1u);
}

TEST(EndToEnd, MeasuredDeploymentNeverSaturatesInferenceVotes) {
  // Realistic deployment sizes stay far below the uint16 vote ceiling; a
  // nonzero saturation counter would mean votes silently stopped counting.
  core::TestbedConfig config = testbed_config();
  config.transit_count = 20;
  config.stub_count = 150;
  config.probe_count = 60;
  config.measured_catchments = true;
  const core::PeeringTestbed testbed(config);
  auto configs = testbed.generator().location_phase();
  configs.resize(6);

  const std::uint64_t before = saturated_votes();
  const auto deployment = testbed.deploy(configs);
  ASSERT_FALSE(deployment.measured.empty());
  EXPECT_EQ(saturated_votes(), before);
}

TEST(EndToEnd, ValidSourceInferenceSeparatesSpoofedTraffic) {
  const core::PeeringTestbed testbed(testbed_config());
  const auto config = testbed.generator().location_phase().front();
  const auto outcome = testbed.route(config);
  const auto catchments = bgp::extract_catchments(outcome, config);

  // Learn legitimate traffic: every routed AS sends a packet from its own
  // space over its true link.
  const measure::AddressPlan plan(testbed.graph());
  traffic::ValidSourceInference inference;
  for (topology::AsId as = 0; as < testbed.graph().size(); ++as) {
    if (catchments[as] == bgp::kNoCatchment) continue;
    inference.learn(catchments[as], plan.router_address(as, 0));
  }

  // A spoofed packet claims a victim address but arrives on the link of
  // the attacker's catchment — flagged unless the victim routes there too.
  const topology::AsId attacker = *testbed.graph().id_of(
      testbed.topology().stubs[17]);
  const topology::AsId victim_as = *testbed.graph().id_of(
      testbed.topology().stubs[401]);
  const auto victim_addr = plan.router_address(victim_as, 0);
  const auto verdict = inference.classify(catchments[attacker], victim_addr);
  if (catchments[attacker] == catchments[victim_as]) {
    EXPECT_EQ(verdict, traffic::SourceVerdict::kLegitimate);
  } else {
    EXPECT_EQ(verdict, traffic::SourceVerdict::kSpoofedWrongLink);
  }

  // Legitimate repeat traffic stays clean.
  EXPECT_EQ(inference.classify(catchments[attacker],
                               plan.router_address(attacker, 0)),
            traffic::SourceVerdict::kLegitimate);
}

}  // namespace
}  // namespace spooftrack
