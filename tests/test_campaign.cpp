#include "core/campaign.hpp"

#include <gtest/gtest.h>

namespace spooftrack::core {
namespace {

TEST(Campaign, PaperDefaultsAreFeasible) {
  const CampaignModel model;
  // 70 >= 2.5 + 3 * 20 = 62.5.
  EXPECT_TRUE(model.feasible());
}

TEST(Campaign, InfeasibleWhenDwellTooShort) {
  CampaignModel model;
  model.minutes_per_config = 30.0;
  EXPECT_FALSE(model.feasible());
}

TEST(Campaign, PaperPlanTakesWeeks) {
  const CampaignModel model;
  // 705 configs x 70 min = 49350 min ~ 34.3 days ("takes weeks", SVI).
  EXPECT_NEAR(model.total_minutes(705), 49350.0, 1e-6);
  EXPECT_NEAR(model.total_days(705), 34.27, 0.01);
}

TEST(Campaign, ConcurrentPrefixesDivideWallClock) {
  CampaignModel model;
  model.concurrent_prefixes = 4;
  // ceil(705/4) = 177 batches.
  EXPECT_NEAR(model.total_minutes(705), 177 * 70.0, 1e-6);
  model.concurrent_prefixes = 705;
  EXPECT_NEAR(model.total_minutes(705), 70.0, 1e-6);
}

TEST(Campaign, EdgeCases) {
  CampaignModel model;
  EXPECT_EQ(model.total_minutes(0), 0.0);
  model.concurrent_prefixes = 0;
  EXPECT_EQ(model.total_minutes(10), 0.0);
}

TEST(Campaign, PrefixesForDeadline) {
  const CampaignModel model;
  // One week: 7*24*60 = 10080 min -> 144 batches of 70 min; 705/144 -> 5.
  EXPECT_EQ(model.prefixes_for_deadline(705, 7.0), 5u);
  // Generous budget: a single prefix suffices.
  EXPECT_EQ(model.prefixes_for_deadline(705, 40.0), 1u);
  // Impossible budget: even one configuration does not fit.
  EXPECT_EQ(model.prefixes_for_deadline(705, 0.01), 0u);
  EXPECT_EQ(model.prefixes_for_deadline(0, 1.0), 1u);
}

TEST(Campaign, DeadlineAnswerActuallyFits) {
  const CampaignModel base;
  for (double days : {3.0, 7.0, 14.0, 30.0}) {
    const auto prefixes = base.prefixes_for_deadline(705, days);
    ASSERT_GT(prefixes, 0u);
    CampaignModel with = base;
    with.concurrent_prefixes = prefixes;
    EXPECT_LE(with.total_days(705), days + 1e-9) << days;
    // And it is minimal: one fewer prefix would miss the deadline (unless
    // already at 1).
    if (prefixes > 1) {
      with.concurrent_prefixes = prefixes - 1;
      EXPECT_GT(with.total_days(705), days - 1e-9) << days;
    }
  }
}

TEST(Campaign, DescribeMentionsDays) {
  CampaignModel model;
  const auto text = model.describe(705);
  EXPECT_NE(text.find("705"), std::string::npos);
  EXPECT_NE(text.find("days"), std::string::npos);
}

}  // namespace
}  // namespace spooftrack::core
