#include "netcore/ipv6.hpp"

#include <gtest/gtest.h>

namespace spooftrack::netcore {
namespace {

TEST(Ipv6Addr, ParsesFullForm) {
  const auto addr =
      Ipv6Addr::parse("2001:0db8:0000:0000:0000:ff00:0042:8329");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->group(0), 0x2001);
  EXPECT_EQ(addr->group(1), 0x0db8);
  EXPECT_EQ(addr->group(5), 0xff00);
  EXPECT_EQ(addr->group(7), 0x8329);
}

TEST(Ipv6Addr, ParsesCompressedForms) {
  EXPECT_EQ(Ipv6Addr::parse("::")->to_string(), "::");
  EXPECT_EQ(Ipv6Addr::parse("::1")->to_string(), "::1");
  EXPECT_EQ(Ipv6Addr::parse("2001:db8::1")->group(7), 1);
  EXPECT_EQ(Ipv6Addr::parse("fe80::")->group(0), 0xfe80);
  EXPECT_EQ(Ipv6Addr::parse("2001:db8::ff00:42:8329")->group(5), 0xff00);
}

TEST(Ipv6Addr, ParsesEmbeddedIpv4Tail) {
  const auto addr = Ipv6Addr::parse("::ffff:192.0.2.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->group(5), 0xffff);
  EXPECT_EQ(addr->group(6), 0xc000);
  EXPECT_EQ(addr->group(7), 0x0201);
}

struct BadV6 {
  const char* text;
};

class Ipv6ParseRejects : public ::testing::TestWithParam<BadV6> {};

TEST_P(Ipv6ParseRejects, Rejects) {
  EXPECT_FALSE(Ipv6Addr::parse(GetParam().text).has_value())
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, Ipv6ParseRejects,
    ::testing::Values(BadV6{""}, BadV6{":"}, BadV6{":::"},
                      BadV6{"1::2::3"}, BadV6{"2001:db8"},
                      BadV6{"1:2:3:4:5:6:7:8:9"},
                      BadV6{"1:2:3:4:5:6:7"}, BadV6{"12345::"},
                      BadV6{"g::1"}, BadV6{"2001:db8::1::"},
                      BadV6{"1:2:3:4:5:6:7:8::"},
                      BadV6{"::192.0.2.999"}, BadV6{"2001:db8:"}));

TEST(Ipv6Addr, CanonicalFormattingRfc5952) {
  // Longest zero run compressed; leftmost on ties; no single-group "::".
  EXPECT_EQ(Ipv6Addr::parse("2001:0db8:0:0:0:0:2:1")->to_string(),
            "2001:db8::2:1");
  EXPECT_EQ(Ipv6Addr::parse("2001:db8:0:1:1:1:1:1")->to_string(),
            "2001:db8:0:1:1:1:1:1");
  EXPECT_EQ(Ipv6Addr::parse("2001:0:0:1:0:0:0:1")->to_string(),
            "2001:0:0:1::1");
  EXPECT_EQ(Ipv6Addr::parse("1:0:0:2:0:0:0:3")->to_string(), "1:0:0:2::3");
  EXPECT_EQ(Ipv6Addr::parse("0:0:1::")->to_string(), "0:0:1::");
  // "::1:0:0:0:0:0" is the same address; the longer zero run wins.
  EXPECT_EQ(Ipv6Addr::parse("::1:0:0:0:0:0")->to_string(), "0:0:1::");
}

TEST(Ipv6Addr, RoundTripsCanonicalText) {
  for (const char* text :
       {"::", "::1", "2001:db8::2:1", "fe80::1234:5678:9abc:def0",
        "ff02::fb", "2001:db8:0:1:1:1:1:1"}) {
    const auto addr = Ipv6Addr::parse(text);
    ASSERT_TRUE(addr.has_value()) << text;
    EXPECT_EQ(addr->to_string(), text);
    EXPECT_EQ(Ipv6Addr::parse(addr->to_string()), addr);
  }
}

TEST(Ipv6Addr, Classification) {
  EXPECT_TRUE(Ipv6Addr::parse("::1")->is_loopback());
  EXPECT_TRUE(Ipv6Addr::parse("::")->is_unspecified());
  EXPECT_TRUE(Ipv6Addr::parse("fe80::1")->is_link_local());
  EXPECT_FALSE(Ipv6Addr::parse("fec0::1")->is_link_local());
  EXPECT_TRUE(Ipv6Addr::parse("ff02::1")->is_multicast());
  EXPECT_TRUE(Ipv6Addr::parse("2001:db8::5")->is_documentation());
  EXPECT_FALSE(Ipv6Addr::parse("2001:db9::5")->is_documentation());
}

TEST(Ipv6Addr, BitAccessor) {
  const auto addr = *Ipv6Addr::parse("8000::1");
  EXPECT_EQ(addr.bit(0), 1);
  EXPECT_EQ(addr.bit(1), 0);
  EXPECT_EQ(addr.bit(127), 1);
}

TEST(Ipv6Prefix, CanonicalisesHostBits) {
  const auto prefix =
      Ipv6Prefix::make(*Ipv6Addr::parse("2001:db8::ffff"), 48);
  EXPECT_EQ(prefix.to_string(), "2001:db8::/48");
}

TEST(Ipv6Prefix, ParseAndContainment) {
  const auto p48 = Ipv6Prefix::parse("2001:db8:42::/48");
  ASSERT_TRUE(p48.has_value());
  EXPECT_TRUE(p48->contains(*Ipv6Addr::parse("2001:db8:42::1")));
  EXPECT_TRUE(p48->contains(*Ipv6Addr::parse("2001:db8:42:ffff::1")));
  EXPECT_FALSE(p48->contains(*Ipv6Addr::parse("2001:db8:43::1")));

  // The paper's SVI scenario: a /48 inside a /32 — longest prefix wins.
  const auto p32 = *Ipv6Prefix::parse("2001:db8::/32");
  EXPECT_TRUE(p32.contains(*p48));
  EXPECT_FALSE(p48->contains(p32));
}

TEST(Ipv6Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv6Prefix::parse("2001:db8::/129").has_value());
  EXPECT_FALSE(Ipv6Prefix::parse("2001:db8::/").has_value());
  EXPECT_FALSE(Ipv6Prefix::parse("nonsense/48").has_value());
  // A bare address is a /128.
  EXPECT_EQ(Ipv6Prefix::parse("::1")->length(), 128);
}

TEST(Ipv6Prefix, ZeroLengthCoversEverything) {
  const auto all = Ipv6Prefix::make(Ipv6Addr{}, 0);
  EXPECT_TRUE(all.contains(*Ipv6Addr::parse("ff02::1")));
  EXPECT_TRUE(all.contains(*Ipv6Addr::parse("::")));
}

class Ipv6PrefixLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(Ipv6PrefixLengthSweep, BaseSurvivesMasking) {
  const auto len = static_cast<std::uint8_t>(GetParam());
  const auto addr = *Ipv6Addr::parse("2001:db8:cafe:f00d::42");
  const auto prefix = Ipv6Prefix::make(addr, len);
  EXPECT_TRUE(prefix.contains(prefix.base()));
  EXPECT_TRUE(prefix.contains(addr));
  // Host bits are zero: re-masking is idempotent.
  EXPECT_EQ(Ipv6Prefix::make(prefix.base(), len), prefix);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Ipv6PrefixLengthSweep,
                         ::testing::Values(0, 1, 7, 32, 48, 64, 127, 128));

}  // namespace
}  // namespace spooftrack::netcore
