#include "topology/metrics.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "topology/synth.hpp"

namespace spooftrack::topology {
namespace {

TEST(Metrics, HopDistancesFromOrigin) {
  const AsGraph g = test::small_topology();
  const AsId origin = *g.id_of(test::kOrigin);
  const AsId sources[] = {origin};
  const auto dist = hop_distances(g, sources);
  EXPECT_EQ(dist[origin], 0u);
  EXPECT_EQ(dist[*g.id_of(test::kP1)], 1u);
  EXPECT_EQ(dist[*g.id_of(test::kP2)], 1u);
  EXPECT_EQ(dist[*g.id_of(test::kA)], 2u);
  EXPECT_EQ(dist[*g.id_of(test::kT1)], 2u);
  EXPECT_EQ(dist[*g.id_of(test::kC)], 3u);
}

TEST(Metrics, MultiSourceBfsTakesClosest) {
  const AsGraph g = test::small_topology();
  const AsId sources[] = {*g.id_of(test::kA), *g.id_of(test::kB)};
  const auto dist = hop_distances(g, sources);
  EXPECT_EQ(dist[*g.id_of(test::kA)], 0u);
  EXPECT_EQ(dist[*g.id_of(test::kB)], 0u);
  EXPECT_EQ(dist[*g.id_of(test::kP1)], 1u);
  EXPECT_EQ(dist[*g.id_of(test::kP2)], 1u);
}

TEST(Metrics, UnreachableMarked) {
  AsGraph g;
  g.add_p2c(1, 2);
  g.add_as(99);  // isolated
  g.freeze();
  const AsId sources[] = {*g.id_of(1)};
  const auto dist = hop_distances(g, sources);
  EXPECT_EQ(dist[*g.id_of(99)], kUnreachable);
}

TEST(Metrics, AcyclicityDetection) {
  EXPECT_TRUE(p2c_acyclic(test::small_topology()));
  AsGraph cyclic;
  cyclic.add_p2c(1, 2);
  cyclic.add_p2c(2, 3);
  cyclic.add_p2c(3, 1);
  cyclic.freeze();
  EXPECT_FALSE(p2c_acyclic(cyclic));
}

TEST(Metrics, Connectivity) {
  EXPECT_TRUE(connected(test::small_topology()));
  AsGraph split;
  split.add_p2c(1, 2);
  split.add_p2c(3, 4);
  split.freeze();
  EXPECT_FALSE(connected(split));
  AsGraph empty;
  empty.freeze();
  EXPECT_TRUE(connected(empty));
}

TEST(Metrics, CustomerConesCountSetSemantics) {
  const AsGraph g = test::small_topology();
  const auto cones = customer_cone_sizes(g);
  // Stubs have cone 1 (just themselves).
  EXPECT_EQ(cones[*g.id_of(test::kA)], 1u);
  EXPECT_EQ(cones[*g.id_of(test::kOrigin)], 1u);
  // p1: {p1, a, d, origin} = 4.
  EXPECT_EQ(cones[*g.id_of(test::kP1)], 4u);
  // p2: {p2, b, d, origin} = 4.
  EXPECT_EQ(cones[*g.id_of(test::kP2)], 4u);
  // t1: {t1, p1, a, d, origin, c} = 6 — d counted once despite two paths.
  EXPECT_EQ(cones[*g.id_of(test::kT1)], 6u);
  // t2: {t2, p2, b, d, origin, e} = 6.
  EXPECT_EQ(cones[*g.id_of(test::kT2)], 6u);
}

TEST(Metrics, CustomerConesRejectCycles) {
  AsGraph cyclic;
  cyclic.add_p2c(1, 2);
  cyclic.add_p2c(2, 1);
  EXPECT_THROW(cyclic.freeze(), std::invalid_argument);

  AsGraph longer;
  longer.add_p2c(1, 2);
  longer.add_p2c(2, 3);
  longer.add_p2c(3, 1);
  longer.freeze();
  EXPECT_THROW(customer_cone_sizes(longer), std::invalid_argument);
}

TEST(Metrics, Tier1SetFindsClique) {
  const AsGraph g = test::small_topology();
  const auto tier1 = tier1_set(g);
  ASSERT_EQ(tier1.size(), 2u);
  std::vector<Asn> asns{g.asn_of(tier1[0]), g.asn_of(tier1[1])};
  std::sort(asns.begin(), asns.end());
  EXPECT_EQ(asns, (std::vector<Asn>{test::kT1, test::kT2}));
}

TEST(Metrics, Tier1SetOnSynth) {
  SynthConfig config;
  config.seed = 8;
  config.tier1_count = 5;
  config.transit_count = 20;
  config.stub_count = 100;
  const auto topo = synthesize(config);
  const auto tier1 = tier1_set(topo.graph);
  EXPECT_EQ(tier1.size(), topo.tier1.size());
}

}  // namespace
}  // namespace spooftrack::topology
