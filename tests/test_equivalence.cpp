// Golden-checksum equivalence suite.
//
// Two bit-exactness guarantees back the path-arena and in-engine
// parallelism work:
//
//  1. The hash-consed PathArena engine reproduces the exact outcomes of
//     the pre-arena engine (per-route std::vector<Asn> paths). The golden
//     checksums below were emitted by that engine at the commit preceding
//     the arena change; outcome_checksum(kFull) folds every route field,
//     every path ASN, next hops, settled rounds and the round count, so a
//     match here is outcome equality, not a smoke signal.
//
//  2. The parallel compute phase is deterministic: any worker count
//     produces bit-identical outcomes to the serial engine, because
//     staged writes are committed (and paths interned) in index order.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/engine.hpp"
#include "bgp/policy.hpp"
#include "topology/synth.hpp"

namespace spooftrack {
namespace {

constexpr topology::Asn kOriginAsn = 47065;
constexpr std::uint32_t kLinkCount = 7;

topology::SynthTopology make_topo(std::uint64_t seed, std::uint32_t tier1,
                                  std::uint32_t transit, std::uint32_t stubs) {
  topology::SynthConfig synth;
  synth.seed = seed;
  synth.tier1_count = tier1;
  synth.transit_count = transit;
  synth.stub_count = stubs;
  synth.origin_asn = kOriginAsn;
  for (std::uint32_t l = 0; l < kLinkCount; ++l) {
    synth.reserved_transit_asns.push_back(60000 + l);
  }
  return topology::synthesize(synth);
}

bgp::OriginSpec make_origin() {
  bgp::OriginSpec origin;
  origin.asn = kOriginAsn;
  for (std::uint32_t l = 0; l < kLinkCount; ++l) {
    origin.links.push_back({l, "pop-" + std::to_string(l), 60000 + l});
  }
  return origin;
}

/// The three statically known configuration shapes; the fourth
/// ("no-export") depends on the topology and is built in the test.
std::vector<bgp::Configuration> static_configs() {
  std::vector<bgp::Configuration> configs(3);
  configs[0].label = "all-plain";
  for (std::uint32_t l = 0; l < kLinkCount; ++l) {
    configs[0].announcements.push_back({l, 0, {}, {}});
  }
  configs[1].label = "prepend";
  for (std::uint32_t l = 0; l < kLinkCount; ++l) {
    configs[1].announcements.push_back({l, l == 0 ? 4u : 0u, {}, {}});
  }
  configs[2].label = "poison";
  for (std::uint32_t l = 0; l < 5; ++l) {
    bgp::AnnouncementSpec spec{l, 0, {}, {}};
    if (l == 1) spec.poisoned = {60004, 60005};
    configs[2].announcements.push_back(spec);
  }
  return configs;
}

/// Blocks the first neighbor of link 2's provider that actually routes
/// through it on announcement 2 (so the steering bites). Mirrors the
/// golden generator exactly.
bgp::Configuration no_export_config(const topology::AsGraph& graph,
                                    const bgp::RoutingOutcome& all_plain,
                                    topology::Asn* blocked_out) {
  const auto provider_id = *graph.id_of(60002);
  topology::Asn blocked = 0;
  for (const topology::Neighbor& n : graph.neighbors(provider_id)) {
    const topology::Asn asn = graph.asn_of(n.id);
    if (asn != kOriginAsn && all_plain.next_hop[n.id] == provider_id &&
        all_plain.best[n.id].valid() && all_plain.best[n.id].ann == 2) {
      blocked = asn;
      break;
    }
  }
  if (blocked_out != nullptr) *blocked_out = blocked;
  bgp::Configuration config;
  config.label = "no-export";
  for (std::uint32_t l = 0; l < kLinkCount; ++l) {
    bgp::AnnouncementSpec spec{l, 0, {}, {}};
    if (l == 2 && blocked != 0) spec.no_export_to = {blocked};
    config.announcements.push_back(spec);
  }
  return config;
}

struct GoldenTopo {
  const char* name;
  std::uint64_t seed;
  std::uint32_t tier1, transit, stubs;
  std::size_t as_count;
  topology::Asn blocked;                 // discovered no-export target
  std::uint64_t checksums[4];            // all-plain, prepend, poison,
                                         // no-export
};

// Emitted by the pre-arena engine (commit 0a91c67) via outcome_checksum's
// exact fold; see the generator description in the file comment.
constexpr GoldenTopo kGoldens[] = {
    {"warm-world",
     20260805,
     8,
     120,
     900,
     1029,
     174,
     {0x38e98461d472d176ULL, 0xcef623a28bc24c11ULL, 0x2d163e3aa00cb6b9ULL,
      0xb6ad2a9baf41a8e8ULL}},
    {"small",
     7,
     4,
     40,
     200,
     245,
     64511,
     {0x2faa73f9d1ac4fd1ULL, 0x07099610066bfc33ULL, 0xbf494159d8d40f5bULL,
      0xd5422efd570f5626ULL}},
};

class GoldenChecksum : public ::testing::TestWithParam<GoldenTopo> {};

TEST_P(GoldenChecksum, ArenaEngineReproducesPreArenaOutcomes) {
  const GoldenTopo& golden = GetParam();
  const auto topo =
      make_topo(golden.seed, golden.tier1, golden.transit, golden.stubs);
  ASSERT_EQ(topo.graph.size(), golden.as_count)
      << "topology drift: goldens no longer apply";
  const bgp::RoutingPolicy policy(topo.graph, bgp::PolicyConfig{});
  const bgp::Engine engine(topo.graph, policy);
  const bgp::OriginSpec origin = make_origin();

  auto configs = static_configs();
  const auto all_plain = engine.run(origin, configs[0]);
  topology::Asn blocked = 0;
  configs.push_back(no_export_config(topo.graph, all_plain, &blocked));
  ASSERT_EQ(blocked, golden.blocked)
      << "no-export target drift: goldens no longer apply";

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto outcome = engine.run(origin, configs[i]);
    ASSERT_TRUE(outcome.converged) << configs[i].label;
    EXPECT_EQ(bgp::outcome_checksum(outcome, bgp::ChecksumScope::kFull),
              golden.checksums[i])
        << golden.name << " / " << configs[i].label;
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, GoldenChecksum,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto& info) {
                           return std::string(info.param.name) == "warm-world"
                                      ? "WarmWorld"
                                      : "Small";
                         });

class ParallelEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelEquivalence, AnyWorkerCountIsBitIdenticalToSerial) {
  // Randomized topology per seed; force the parallel path even on small
  // frontiers so every round exercises the chunked compute + ordered
  // commit, not just the deep middle of propagation.
  const std::uint64_t seed = GetParam();
  const auto topo = make_topo(seed, 5, 60, 400);
  const bgp::RoutingPolicy policy(topo.graph, bgp::PolicyConfig{});
  const bgp::OriginSpec origin = make_origin();

  auto configs = static_configs();
  {
    const bgp::Engine probe(topo.graph, policy);
    configs.push_back(
        no_export_config(topo.graph, probe.run(origin, configs[0]), nullptr));
  }

  std::vector<std::uint64_t> serial_sums;
  for (std::uint32_t workers : {1u, 2u, 8u}) {
    bgp::EngineOptions options;
    options.workers = workers;
    options.parallel_min_frontier = 1;
    const bgp::Engine engine(topo.graph, policy, options);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const auto outcome = engine.run(origin, configs[i]);
      ASSERT_TRUE(outcome.converged);
      const auto sum =
          bgp::outcome_checksum(outcome, bgp::ChecksumScope::kFull);
      if (workers == 1) {
        serial_sums.push_back(sum);
      } else {
        EXPECT_EQ(sum, serial_sums[i])
            << "workers=" << workers << " config=" << configs[i].label;
      }
    }
  }
}

TEST_P(ParallelEquivalence, WarmStartsAreBitIdenticalAcrossWorkerCounts) {
  // The warm path shares the staged-commit machinery but starts from a
  // sparse frontier; make sure parallel chunking doesn't disturb it.
  const std::uint64_t seed = GetParam();
  const auto topo = make_topo(seed, 5, 60, 400);
  const bgp::RoutingPolicy policy(topo.graph, bgp::PolicyConfig{});
  const bgp::OriginSpec origin = make_origin();
  const auto configs = static_configs();

  std::vector<std::uint64_t> serial_sums;
  for (std::uint32_t workers : {1u, 2u, 8u}) {
    bgp::EngineOptions options;
    options.workers = workers;
    options.parallel_min_frontier = 1;
    const bgp::Engine engine(topo.graph, policy, options);
    auto baseline = engine.run(origin, configs[0]);
    for (std::size_t i = 1; i < configs.size(); ++i) {
      const auto warm =
          engine.run_warm(origin, configs[i], configs[i - 1], baseline);
      ASSERT_TRUE(warm.converged);
      const auto sum = bgp::outcome_checksum(warm, bgp::ChecksumScope::kFull);
      if (workers == 1) {
        serial_sums.push_back(sum);
      } else {
        EXPECT_EQ(sum, serial_sums[i - 1])
            << "workers=" << workers << " config=" << configs[i].label;
      }
      baseline = warm;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquivalence,
                         ::testing::Values(11, 47, 20260806));

TEST(OutcomeChecksum, ScopesDiffer) {
  // kRoutes must ignore convergence telemetry: two outcomes with identical
  // routes but different settled rounds share a kRoutes digest and differ
  // under kFull.
  const auto topo = make_topo(7, 4, 40, 200);
  const bgp::RoutingPolicy policy(topo.graph, bgp::PolicyConfig{});
  const bgp::OriginSpec origin = make_origin();
  const auto configs = static_configs();

  const bgp::Engine fast(topo.graph, policy);
  const auto a = fast.run(origin, configs[1]);
  const auto warm = fast.run_warm(origin, configs[1], configs[0],
                                  fast.run(origin, configs[0]));
  EXPECT_EQ(bgp::outcome_checksum(a, bgp::ChecksumScope::kRoutes),
            bgp::outcome_checksum(warm, bgp::ChecksumScope::kRoutes));
  EXPECT_NE(bgp::outcome_checksum(a, bgp::ChecksumScope::kFull),
            bgp::outcome_checksum(warm, bgp::ChecksumScope::kFull));
}

}  // namespace
}  // namespace spooftrack
