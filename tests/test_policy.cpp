#include "bgp/policy.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "helpers.hpp"

namespace spooftrack::bgp {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest()
      : graph_(test::small_topology()),
        policy_(graph_, test::clean_policy_config()) {}

  topology::AsId id(topology::Asn asn) const { return *graph_.id_of(asn); }

  topology::AsGraph graph_;
  RoutingPolicy policy_;
};

TEST_F(PolicyTest, CanonicalLocalPref) {
  const auto any = id(test::kA);
  EXPECT_EQ(policy_.local_pref(any, topology::Rel::kCustomer), kPrefCustomer);
  EXPECT_EQ(policy_.local_pref(any, topology::Rel::kPeer), kPrefPeer);
  EXPECT_EQ(policy_.local_pref(any, topology::Rel::kProvider), kPrefProvider);
}

TEST_F(PolicyTest, SwappedLocalPref) {
  AsPolicyFlags flags;
  flags.peer_provider_swapped = true;
  policy_.override_flags(id(test::kA), flags);
  EXPECT_EQ(policy_.local_pref(id(test::kA), topology::Rel::kProvider),
            kPrefPeer);
  EXPECT_EQ(policy_.local_pref(id(test::kA), topology::Rel::kPeer),
            kPrefProvider);
  EXPECT_EQ(policy_.local_pref(id(test::kA), topology::Rel::kCustomer),
            kPrefCustomer);
}

TEST_F(PolicyTest, ExportRulesAreValleyFree) {
  // Customer-learned routes go everywhere.
  for (auto to : {topology::Rel::kCustomer, topology::Rel::kPeer,
                  topology::Rel::kProvider}) {
    EXPECT_TRUE(policy_.exports(topology::Rel::kCustomer, to));
  }
  // Peer/provider-learned routes go only to customers.
  for (auto from : {topology::Rel::kPeer, topology::Rel::kProvider}) {
    EXPECT_TRUE(policy_.exports(from, topology::Rel::kCustomer));
    EXPECT_FALSE(policy_.exports(from, topology::Rel::kPeer));
    EXPECT_FALSE(policy_.exports(from, topology::Rel::kProvider));
  }
}

TEST_F(PolicyTest, LoopPreventionRejectsOwnAsn) {
  const std::vector<topology::Asn> path{test::kP1, test::kT1, 47065};
  EXPECT_FALSE(policy_.accepts(id(test::kT1), test::kT1,
                               topology::Rel::kCustomer, std::span(path)));
  EXPECT_TRUE(policy_.accepts(id(test::kT2), test::kT2, topology::Rel::kPeer,
                              std::span(path)));
}

TEST_F(PolicyTest, IgnorePoisonFlagDisablesLoopPrevention) {
  AsPolicyFlags flags;
  flags.ignores_poison = true;
  policy_.override_flags(id(test::kT1), flags);
  const std::vector<topology::Asn> path{test::kP1, test::kT1, 47065};
  EXPECT_TRUE(policy_.accepts(id(test::kT1), test::kT1,
                              topology::Rel::kCustomer, std::span(path)));
}

TEST_F(PolicyTest, Tier1FilterDropsPoisonedCustomerRoutes) {
  // t2 (tier-1) hears a customer route whose path contains t1 (tier-1).
  const std::vector<topology::Asn> path{test::kP2, 47065, test::kT1, 47065};
  EXPECT_FALSE(policy_.accepts(id(test::kT2), test::kT2,
                               topology::Rel::kCustomer, std::span(path)));
  // The same path from a peer is fine (only customer announcements are
  // suspicious).
  EXPECT_TRUE(policy_.accepts(id(test::kT2), test::kT2, topology::Rel::kPeer,
                              std::span(path)));
  // Non-tier-1 receivers do not filter (receiver must not be in the path,
  // or loop prevention fires first).
  EXPECT_TRUE(policy_.accepts(id(test::kB), test::kB,
                              topology::Rel::kCustomer, std::span(path)));
}

TEST_F(PolicyTest, Tier1FilterCanBeDisabledGlobally) {
  auto config = test::clean_policy_config();
  config.tier1_filters_poisoned = false;
  RoutingPolicy lenient(graph_, config);
  const std::vector<topology::Asn> path{test::kP2, 47065, test::kT1, 47065};
  EXPECT_TRUE(lenient.accepts(id(test::kT2), test::kT2,
                              topology::Rel::kCustomer, std::span(path)));
}

TEST_F(PolicyTest, CandidateRefAcceptChecksRelayedSender) {
  // A tier-1 hearing a customer candidate relayed BY another tier-1 must
  // reject it even though the tier-1 ASN is not yet in the learned path.
  PathArena arena;
  CandidateRef cand;
  cand.sender_asn = test::kT1;
  cand.rel_of_sender = topology::Rel::kCustomer;
  cand.ann = 0;
  cand.arena = &arena;
  cand.learned_path = arena.intern(std::vector<topology::Asn>{47065});
  cand.path_includes_sender = false;
  EXPECT_FALSE(policy_.accepts(id(test::kT2), test::kT2,
                               topology::Rel::kCustomer, cand));
  // Same candidate relayed by a non-tier-1 passes.
  cand.sender_asn = test::kP2;
  EXPECT_TRUE(policy_.accepts(id(test::kT2), test::kT2,
                              topology::Rel::kCustomer, cand));
}

TEST_F(PolicyTest, BetterPrefersLocalPrefThenLength) {
  const auto receiver = id(test::kD);
  PathArena arena;
  const std::vector<topology::Asn> short_vec{test::kP1, 47065};
  const std::vector<topology::Asn> long_vec{test::kP2, test::kT2, test::kT1,
                                            47065};

  CandidateRef customer_long;
  customer_long.sender_asn = test::kP2;
  customer_long.local_pref = kPrefCustomer;
  customer_long.arena = &arena;
  customer_long.learned_path = arena.intern(long_vec);
  customer_long.path_includes_sender = true;

  CandidateRef provider_short;
  provider_short.sender_asn = test::kP1;
  provider_short.local_pref = kPrefProvider;
  provider_short.arena = &arena;
  provider_short.learned_path = arena.intern(short_vec);
  provider_short.path_includes_sender = true;

  EXPECT_TRUE(policy_.better(receiver, test::kD, customer_long,
                             provider_short));
  EXPECT_FALSE(policy_.better(receiver, test::kD, provider_short,
                              customer_long));

  // Same pref: shorter wins.
  CandidateRef provider_long = customer_long;
  provider_long.local_pref = kPrefProvider;
  EXPECT_TRUE(policy_.better(receiver, test::kD, provider_short,
                             provider_long));
}

TEST_F(PolicyTest, TieScoreIsStable) {
  EXPECT_EQ(policy_.tie_score(1, 2), policy_.tie_score(1, 2));
  EXPECT_NE(policy_.tie_score(1, 2), policy_.tie_score(2, 1));
}

TEST_F(PolicyTest, RandomFlagFractionsRoughlyRespected) {
  // Large synthetic population; fractions should land near their targets.
  topology::AsGraph g;
  for (topology::Asn asn = 1; asn <= 4000; ++asn) g.add_p2c(900000, asn);
  g.freeze();
  PolicyConfig config;
  config.seed = 99;
  config.ignore_poison_fraction = 0.10;
  config.shortest_violator_fraction = 0.20;
  config.peer_provider_swap_fraction = 0.05;
  RoutingPolicy policy(g, config);
  std::size_t ignore = 0, shortest = 0, swapped = 0;
  for (topology::AsId id = 0; id < g.size(); ++id) {
    ignore += policy.flags(id).ignores_poison;
    shortest += policy.flags(id).shortest_violator;
    swapped += policy.flags(id).peer_provider_swapped;
  }
  const double n = static_cast<double>(g.size());
  EXPECT_NEAR(ignore / n, 0.10, 0.02);
  EXPECT_NEAR(shortest / n, 0.20, 0.02);
  EXPECT_NEAR(swapped / n, 0.05, 0.02);
}

}  // namespace
}  // namespace spooftrack::bgp
