// Integration tests of the PeeringTestbed harness on a reduced topology.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "topology/metrics.hpp"

namespace spooftrack::core {
namespace {

TestbedConfig small_testbed() {
  TestbedConfig config;
  config.seed = 11;
  config.tier1_count = 5;
  config.transit_count = 40;
  config.stub_count = 400;
  config.probe_count = 150;
  config.feed.peer_count = 60;
  return config;
}

class TestbedTest : public ::testing::Test {
 protected:
  TestbedTest() : testbed_(small_testbed()) {}
  PeeringTestbed testbed_;
};

TEST(Table1, MatchesThePaper) {
  const auto muxes = table1_muxes();
  ASSERT_EQ(muxes.size(), 7u);
  EXPECT_STREQ(muxes[0].mux, "AMS-IX");
  EXPECT_EQ(muxes[0].provider_asn, 12859u);
  EXPECT_STREQ(muxes[5].provider_name, "RNP");
  EXPECT_EQ(muxes[6].provider_asn, 101u);
}

TEST_F(TestbedTest, BuildsSevenLinkOrigin) {
  EXPECT_EQ(testbed_.origin().links.size(), 7u);
  EXPECT_EQ(testbed_.origin().asn, kPeeringAsn);
  EXPECT_TRUE(testbed_.graph().contains(kPeeringAsn));
  // Every Table I provider is present and is a provider of the origin.
  for (const auto& mux : table1_muxes()) {
    const auto provider = testbed_.graph().id_of(mux.provider_asn);
    ASSERT_TRUE(provider.has_value()) << mux.provider_name;
    EXPECT_EQ(testbed_.graph().relationship(testbed_.origin_id(), *provider),
              topology::Rel::kProvider);
  }
}

TEST_F(TestbedTest, TopologyIsSound) {
  EXPECT_TRUE(topology::p2c_acyclic(testbed_.graph()));
  EXPECT_TRUE(topology::connected(testbed_.graph()));
  EXPECT_FALSE(testbed_.probe_ases().empty());
}

TEST_F(TestbedTest, RouteRunsSingleConfig) {
  auto configs = testbed_.generator().location_phase();
  const auto outcome = testbed_.route(configs.front());
  EXPECT_TRUE(outcome.converged);
}

TEST_F(TestbedTest, DeployGroundTruthPipeline) {
  TestbedConfig config = small_testbed();
  config.measured_catchments = false;
  const PeeringTestbed testbed(config);

  GeneratorOptions gen_options;
  gen_options.max_removals = 1;  // 1 + 7 = 8 location configs
  auto configs = testbed.generator(gen_options).location_phase();
  const auto result = testbed.deploy(configs);

  ASSERT_EQ(result.truth.size(), 8u);
  EXPECT_TRUE(result.measured.empty());
  // Ground-truth sources: every AS except the origin (all are routed).
  EXPECT_EQ(result.sources.size(), testbed.graph().size() - 1);
  ASSERT_EQ(result.matrix.size(), 8u);
  // Matrix rows match truth catchments.
  for (std::size_t s = 0; s < result.sources.size(); ++s) {
    EXPECT_EQ(result.matrix.link_at(0, s),
              result.truth[0].link_of[result.sources[s]]);
  }
  // Refining over the location phase produces multiple clusters.
  const auto clustering = cluster_sources(result.matrix);
  EXPECT_GT(clustering.cluster_count, 7u);
}

TEST_F(TestbedTest, DeployMeasuredPipeline) {
  GeneratorOptions gen_options;
  gen_options.max_removals = 1;
  auto configs = testbed_.generator(gen_options).location_phase();
  const auto result = testbed_.deploy(configs);

  ASSERT_EQ(result.measured.size(), 8u);
  EXPECT_FALSE(result.sources.empty());
  EXPECT_GT(result.mean_coverage, 0.0);

  // Measured catchments should agree with ground truth for the huge
  // majority of baseline sources in the all-links configuration.
  std::size_t agree = 0, resolved = 0;
  for (std::size_t s = 0; s < result.sources.size(); ++s) {
    const auto truth = result.truth[0].link_of[result.sources[s]];
    const bgp::LinkId measured = result.matrix.link_at(0, s);
    if (measured == bgp::kNoCatchment) continue;
    ++resolved;
    agree += measured == truth;
  }
  ASSERT_GT(resolved, 0u);
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(resolved), 0.9);
}

TEST_F(TestbedTest, DistancesPopulated) {
  // A clean policy (no tiebreak violators) so providers take the direct
  // customer route from the origin.
  TestbedConfig config = small_testbed();
  config.policy.shortest_violator_fraction = 0.0;
  config.policy.peer_provider_swap_fraction = 0.0;
  config.measured_catchments = false;
  const PeeringTestbed testbed(config);

  auto configs = testbed.generator().location_phase();
  configs.resize(1);
  const auto result = testbed.deploy(configs);
  // Providers sit 1 AS-hop from the origin's announcement.
  for (const auto& mux : table1_muxes()) {
    const auto id = *testbed.graph().id_of(mux.provider_asn);
    EXPECT_EQ(result.min_route_distance[id], 1u) << mux.provider_name;
  }
  // Everything routed has a finite distance.
  std::size_t finite = 0;
  for (auto d : result.min_route_distance) {
    finite += d != topology::kUnreachable;
  }
  EXPECT_EQ(finite, testbed.graph().size() - 1);
}

TEST_F(TestbedTest, AuditProducesPerConfigStats) {
  TestbedConfig config = small_testbed();
  config.measured_catchments = false;
  config.audit_policies = true;
  const PeeringTestbed testbed(config);
  auto configs = testbed.generator().location_phase();
  configs.resize(3);
  const auto result = testbed.deploy(configs);
  ASSERT_EQ(result.compliance.size(), 3u);
  for (const auto& stats : result.compliance) {
    EXPECT_GT(stats.audited, 0u);
    // Violators exist (default policy fractions), so compliance is high
    // but typically below 1; it must never exceed 1.
    EXPECT_LE(stats.both_fraction(), 1.0);
    EXPECT_GE(stats.best_relationship_fraction(), 0.8);
    EXPECT_GE(stats.best_relationship_fraction(), stats.both_fraction());
  }
}

TEST_F(TestbedTest, DeterministicDeployments) {
  auto configs = testbed_.generator().location_phase();
  configs.resize(2);
  const PeeringTestbed other(small_testbed());
  const auto a = testbed_.deploy(configs);
  const auto b = other.deploy(configs);
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.matrix, b.matrix);
}

}  // namespace
}  // namespace spooftrack::core
