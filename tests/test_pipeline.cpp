// The deterministic task-graph executor (spooftrack::pipeline) and the
// streaming deploy path built on it.
//
// Two layers of coverage:
//   1. executor contract — commit ordering, per-chain produce
//      serialization, backpressure bound, exception drain, inline
//      single-worker execution, plan validation;
//   2. end-to-end equivalence — PeeringTestbed::deploy in pipelined mode
//      must be byte-identical to barrier mode for every worker count x
//      queue depth combination, with and without an active fault plan,
//      including chain-lease lifetimes when fault injection abandons
//      configurations (the ASan job turns a leaked lease into a failure).
#include "pipeline/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bgp/engine.hpp"
#include "core/config_gen.hpp"
#include "core/experiment.hpp"
#include "obs/obs.hpp"

namespace spooftrack {
namespace {

// ---------------------------------------------------------------------------
// Executor contract
// ---------------------------------------------------------------------------

/// chain_steps with one item per step, chains striding over [0, items).
pipeline::GraphPlan strided_plan(std::size_t items, std::size_t chains) {
  pipeline::GraphPlan plan;
  plan.items = items;
  plan.chain_steps.resize(chains);
  for (std::size_t i = 0; i < items; ++i) {
    plan.chain_steps[i % chains].push_back({i});
  }
  return plan;
}

TEST(PipelineExecutor, RunsEveryStageExactlyOnceAndCommitsInOrder) {
  for (const std::size_t workers : {1u, 2u, 8u}) {
    for (const std::size_t depth : {1u, 2u, 4u}) {
      const pipeline::GraphPlan plan = strided_plan(23, 3);
      std::mutex mutex;
      std::vector<int> produced(23, 0);
      std::vector<int> worked(23, 0);
      std::vector<std::size_t> commit_order;

      pipeline::Stages stages;
      stages.produce = [&](std::size_t chain, std::size_t step) {
        const std::lock_guard<std::mutex> lock(mutex);
        for (std::size_t item : plan.chain_steps[chain][step]) {
          ++produced[item];
        }
      };
      stages.work = [&](std::size_t item, std::size_t worker) {
        ASSERT_LT(worker, workers);
        const std::lock_guard<std::mutex> lock(mutex);
        EXPECT_EQ(produced[item], 1) << "worked before produced";
        ++worked[item];
      };
      stages.commit = [&](std::size_t item) {
        const std::lock_guard<std::mutex> lock(mutex);
        EXPECT_EQ(worked[item], 1) << "committed before worked";
        commit_order.push_back(item);
      };

      pipeline::run_graph(plan, stages, {workers, depth});
      ASSERT_EQ(commit_order.size(), 23u);
      for (std::size_t i = 0; i < commit_order.size(); ++i) {
        EXPECT_EQ(commit_order[i], i) << "commits must ascend globally";
      }
      EXPECT_TRUE(std::all_of(produced.begin(), produced.end(),
                              [](int c) { return c == 1; }));
      EXPECT_TRUE(std::all_of(worked.begin(), worked.end(),
                              [](int c) { return c == 1; }));
    }
  }
}

TEST(PipelineExecutor, ProduceIsSerialPerChainAndAscending) {
  const pipeline::GraphPlan plan = strided_plan(40, 4);
  std::mutex mutex;
  std::vector<std::vector<std::size_t>> seen(plan.chains());
  std::vector<int> in_produce(plan.chains(), 0);

  pipeline::Stages stages;
  stages.produce = [&](std::size_t chain, std::size_t step) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      EXPECT_EQ(in_produce[chain], 0) << "chain produced concurrently";
      ++in_produce[chain];
      seen[chain].push_back(step);
    }
    std::this_thread::yield();
    const std::lock_guard<std::mutex> lock(mutex);
    --in_produce[chain];
  };
  pipeline::run_graph(plan, stages, {8, 2});

  for (std::size_t c = 0; c < plan.chains(); ++c) {
    ASSERT_EQ(seen[c].size(), plan.chain_steps[c].size());
    for (std::size_t s = 0; s < seen[c].size(); ++s) {
      EXPECT_EQ(seen[c][s], s) << "steps must ascend within a chain";
    }
  }
}

TEST(PipelineExecutor, BackpressureBoundsOutstandingSteps) {
  for (const std::size_t depth : {1u, 2u, 4u}) {
    const pipeline::GraphPlan plan = strided_plan(32, 2);
    std::mutex mutex;
    std::vector<std::size_t> outstanding(plan.chains(), 0);
    std::size_t worst = 0;
    std::vector<std::size_t> chain_of(plan.items, 0);
    for (std::size_t c = 0; c < plan.chains(); ++c) {
      for (const auto& step : plan.chain_steps[c]) {
        for (std::size_t item : step) chain_of[item] = c;
      }
    }

    pipeline::Stages stages;
    stages.produce = [&](std::size_t chain, std::size_t) {
      const std::lock_guard<std::mutex> lock(mutex);
      ++outstanding[chain];
      worst = std::max(worst, outstanding[chain]);
    };
    stages.work = [&](std::size_t item, std::size_t) {
      const std::lock_guard<std::mutex> lock(mutex);
      --outstanding[chain_of[item]];
    };
    pipeline::run_graph(plan, stages, {4, depth});
    EXPECT_LE(worst, depth) << "a chain ran further ahead than queue_depth";
  }
}

TEST(PipelineExecutor, SingleWorkerRunsInlineOnCallingThread) {
  const pipeline::GraphPlan plan = strided_plan(9, 3);
  const std::thread::id caller = std::this_thread::get_id();
  pipeline::Stages stages;
  stages.produce = [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  };
  stages.work = [&](std::size_t, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  };
  stages.commit = [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  };
  pipeline::run_graph(plan, stages, {1, 2});
}

TEST(PipelineExecutor, ExceptionsPropagateFromEveryStage) {
  for (const std::size_t workers : {1u, 4u}) {
    for (int stage = 0; stage < 3; ++stage) {
      const pipeline::GraphPlan plan = strided_plan(16, 2);
      pipeline::Stages stages;
      if (stage == 0) {
        stages.produce = [](std::size_t chain, std::size_t step) {
          if (chain == 1 && step == 3) throw std::runtime_error("produce");
        };
      } else if (stage == 1) {
        stages.work = [](std::size_t item, std::size_t) {
          if (item == 7) throw std::runtime_error("work");
        };
      } else {
        stages.commit = [](std::size_t item) {
          if (item == 5) throw std::runtime_error("commit");
        };
      }
      EXPECT_THROW(pipeline::run_graph(plan, stages, {workers, 2}),
                   std::runtime_error)
          << "stage " << stage << ", workers " << workers;
    }
  }
}

TEST(PipelineExecutor, RejectsPlansThatAreNotAPermutation) {
  pipeline::Stages stages;  // all no-ops
  {
    pipeline::GraphPlan duplicate;
    duplicate.items = 3;
    duplicate.chain_steps = {{{0, 1}, {1}}, {{2}}};
    EXPECT_THROW(pipeline::run_graph(duplicate, stages),
                 std::invalid_argument);
  }
  {
    pipeline::GraphPlan out_of_range;
    out_of_range.items = 2;
    out_of_range.chain_steps = {{{0}, {5}}};
    EXPECT_THROW(pipeline::run_graph(out_of_range, stages),
                 std::invalid_argument);
  }
  {
    pipeline::GraphPlan missing;
    missing.items = 3;
    missing.chain_steps = {{{0}, {2}}};
    EXPECT_THROW(pipeline::run_graph(missing, stages), std::invalid_argument);
  }
}

TEST(PipelineExecutor, EmptyGraphAndEmptyStepsAreFine) {
  pipeline::Stages stages;
  pipeline::run_graph({}, stages);  // no chains, no items

  pipeline::GraphPlan sparse;
  sparse.items = 2;
  sparse.chain_steps = {{{}, {1}, {}}, {{0}}};
  std::vector<std::size_t> committed;
  stages.commit = [&](std::size_t item) { committed.push_back(item); };
  pipeline::run_graph(sparse, stages, {2, 1});
  EXPECT_EQ(committed, (std::vector<std::size_t>{0, 1}));
}

// ---------------------------------------------------------------------------
// Leased warm runs (bgp::Engine::run_warm_leased)
// ---------------------------------------------------------------------------

TEST(WarmLease, ConsumeAndCopyProduceIdenticalOutcomes) {
  core::TestbedConfig config;
  config.seed = 11;
  config.tier1_count = 5;
  config.transit_count = 40;
  config.stub_count = 300;
  config.probe_count = 100;
  config.feed.peer_count = 40;
  const core::PeeringTestbed testbed(config);
  const auto configs = testbed.generator().location_phase();
  ASSERT_GE(configs.size(), 3u);

  const bgp::Engine& engine = testbed.engine();
  const auto base_prep = engine.prepare(testbed.origin(), configs[0]);
  const auto next_prep = engine.prepare(testbed.origin(), configs[1]);

  auto baseline_a = std::make_shared<bgp::RoutingOutcome>(
      engine.run(testbed.origin(), configs[0], base_prep));
  auto baseline_b = std::make_shared<bgp::RoutingOutcome>(
      engine.run(testbed.origin(), configs[0], base_prep));

  const bgp::RoutingOutcome copied = engine.run_warm_leased(
      testbed.origin(), configs[1], next_prep, configs[0], base_prep,
      baseline_a, /*consume=*/false);
  const bgp::RoutingOutcome consumed = engine.run_warm_leased(
      testbed.origin(), configs[1], next_prep, configs[0], base_prep,
      baseline_b, /*consume=*/true);

  // The copy path must leave the baseline untouched (the lease holder will
  // still read it); the consume path owes nothing.
  ASSERT_EQ(baseline_a->best.size(), copied.best.size());
  EXPECT_EQ(consumed.rounds, copied.rounds);
  std::size_t mismatches = 0;
  for (topology::AsId id = 0; id < copied.best.size(); ++id) {
    if (!bgp::routes_equal(copied, consumed, id)) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);

  EXPECT_THROW(engine.run_warm_leased(testbed.origin(), configs[1], next_prep,
                                      configs[0], base_prep, nullptr, true),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Deploy equivalence: pipelined == barrier, byte for byte
// ---------------------------------------------------------------------------

core::TestbedConfig equivalence_testbed() {
  core::TestbedConfig config;
  config.seed = 11;
  config.tier1_count = 5;
  config.transit_count = 40;
  config.stub_count = 300;
  config.probe_count = 100;
  config.traceroute_rounds = 2;
  config.feed.peer_count = 40;
  config.audit_policies = true;
  return config;
}

/// A 10-config plan with memo fan-out: the location phase plus two
/// duplicated announcement lists, so unique < n and outcomes are shared.
std::vector<bgp::Configuration> equivalence_plan(
    const core::PeeringTestbed& testbed) {
  core::GeneratorOptions gen;
  gen.max_removals = 1;
  auto plan = testbed.generator(gen).location_phase();  // 8 configs
  plan.push_back(plan[2]);
  plan.push_back(plan[0]);
  return plan;
}

void expect_same_deployment(const core::DeploymentResult& barrier,
                            const core::DeploymentResult& pipelined,
                            const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(barrier.configs.size(), pipelined.configs.size());
  EXPECT_EQ(barrier.truth, pipelined.truth);
  EXPECT_EQ(barrier.measured, pipelined.measured);
  EXPECT_EQ(barrier.sources, pipelined.sources);
  EXPECT_EQ(barrier.matrix, pipelined.matrix);
  EXPECT_EQ(barrier.min_route_distance, pipelined.min_route_distance);
  EXPECT_EQ(barrier.engine_rounds, pipelined.engine_rounds);
  ASSERT_EQ(barrier.compliance.size(), pipelined.compliance.size());
  for (std::size_t i = 0; i < barrier.compliance.size(); ++i) {
    EXPECT_EQ(barrier.compliance[i].audited, pipelined.compliance[i].audited);
    EXPECT_EQ(barrier.compliance[i].best_relationship,
              pipelined.compliance[i].best_relationship);
    EXPECT_EQ(barrier.compliance[i].both_criteria,
              pipelined.compliance[i].both_criteria);
  }
  EXPECT_EQ(barrier.mean_multi_catchment, pipelined.mean_multi_catchment);
  EXPECT_EQ(barrier.mean_coverage, pipelined.mean_coverage);
  ASSERT_EQ(barrier.quality.size(), pipelined.quality.size());
  for (std::size_t i = 0; i < barrier.quality.size(); ++i) {
    EXPECT_EQ(barrier.quality[i].grade, pipelined.quality[i].grade) << i;
    EXPECT_EQ(barrier.quality[i].deploy_attempts,
              pipelined.quality[i].deploy_attempts) << i;
    EXPECT_EQ(barrier.quality[i].feed_entries,
              pipelined.quality[i].feed_entries) << i;
    EXPECT_EQ(barrier.quality[i].feed_faults,
              pipelined.quality[i].feed_faults) << i;
    EXPECT_EQ(barrier.quality[i].traces, pipelined.quality[i].traces) << i;
    EXPECT_EQ(barrier.quality[i].trace_faults,
              pipelined.quality[i].trace_faults) << i;
  }
}

void run_equivalence_sweep(core::TestbedConfig base) {
  base.pipeline = core::PipelineMode::kOff;
  const core::PeeringTestbed barrier_bed(base);
  const auto plan = equivalence_plan(barrier_bed);
  const auto barrier = barrier_bed.deploy(plan);

  for (const std::size_t workers : {1u, 2u, 8u}) {
    for (const std::size_t depth : {1u, 2u, 4u}) {
      core::TestbedConfig config = base;
      config.pipeline = core::PipelineMode::kOn;
      config.measure_workers = workers;
      config.pipeline_depth = depth;
      const core::PeeringTestbed testbed(config);
      const auto pipelined = testbed.deploy(plan);
      expect_same_deployment(barrier, pipelined,
                             "workers=" + std::to_string(workers) +
                                 " depth=" + std::to_string(depth));
    }
  }
}

TEST(PipelineEquivalence, MatchesBarrierForAllWorkerAndDepthCombos) {
  run_equivalence_sweep(equivalence_testbed());
}

TEST(PipelineEquivalence, MatchesBarrierUnderActiveFaultPlan) {
  core::TestbedConfig config = equivalence_testbed();
  config.faults.feed_outage_prob = 0.1;
  config.faults.feed_stale_prob = 0.05;
  config.faults.traceroute_loss_prob = 0.05;
  config.faults.traceroute_truncate_prob = 0.05;
  config.faults.deploy_failure_prob = 0.25;
  config.faults.deploy_retry_budget = 0;
  run_equivalence_sweep(config);
}

TEST(PipelineEquivalence, MatchesBarrierWithColdCampaign) {
  core::TestbedConfig config = equivalence_testbed();
  config.warm_campaign = false;
  run_equivalence_sweep(config);
}

TEST(PipelineEquivalence, AutoModeStreamsAndOffForcesBarrier) {
  core::TestbedConfig config = equivalence_testbed();
  config.pipeline = core::PipelineMode::kAuto;
  const core::PeeringTestbed auto_bed(config);
  const auto plan = equivalence_plan(auto_bed);
  const auto with_auto = auto_bed.deploy(plan);

  config.pipeline = core::PipelineMode::kOff;
  const core::PeeringTestbed off_bed(config);
  expect_same_deployment(off_bed.deploy(plan), with_auto, "auto-vs-off");

  // Ground truth has no measurement stage to overlap: auto must fall back
  // to barrier (and not touch `measured`).
  config.pipeline = core::PipelineMode::kAuto;
  config.measured_catchments = false;
  const core::PeeringTestbed truth_bed(config);
  const auto truth = truth_bed.deploy(plan);
  EXPECT_TRUE(truth.measured.empty());
  EXPECT_FALSE(truth.sources.empty());
}

// ---------------------------------------------------------------------------
// Chain-lease lifetimes under fault abandonment (ASan job catches leaks)
// ---------------------------------------------------------------------------

TEST(PipelineLease, AbandonedConfigsStillDrainAndReleaseLeases) {
  // Every deployment attempt fails: all configs abandoned, no measurement
  // ever consumes a lease — yet every warm-engine outcome and buffer must
  // be dropped by the time deploy returns (leak-checked under ASan).
  core::TestbedConfig config = equivalence_testbed();
  config.faults.deploy_failure_prob = 1.0;
  config.faults.deploy_retry_budget = 0;
  config.pipeline = core::PipelineMode::kOn;
  config.measure_workers = 2;
  const core::PeeringTestbed testbed(config);
  const auto plan = equivalence_plan(testbed);
  const auto result = testbed.deploy(plan);

  EXPECT_TRUE(result.sources.empty());
  EXPECT_EQ(result.matrix.size(), plan.size());
  EXPECT_EQ(result.matrix.sources(), 0u);
  for (const auto& q : result.quality) {
    EXPECT_EQ(q.grade, fault::Grade::kFailed);
  }
  // Ground truth is routing-plane state and survives abandonment.
  for (const auto& truth : result.truth) {
    EXPECT_FALSE(truth.link_of.empty());
  }

  // And the all-abandoned case is still barrier-equivalent.
  core::TestbedConfig off = config;
  off.pipeline = core::PipelineMode::kOff;
  const core::PeeringTestbed off_bed(off);
  expect_same_deployment(off_bed.deploy(plan), result, "all-abandoned");
}

#if SPOOFTRACK_OBS_ENABLED
TEST(PipelineLease, WarmChainsAccountEveryLease) {
  core::TestbedConfig config = equivalence_testbed();
  config.pipeline = core::PipelineMode::kOn;
  config.measure_workers = 2;
  const core::PeeringTestbed testbed(config);
  const auto plan = equivalence_plan(testbed);

  const auto before = obs::Registry::global().snapshot();
  const auto result = testbed.deploy(plan);
  const auto after = obs::Registry::global().snapshot();
  ASSERT_FALSE(result.matrix.empty());

  const auto counter = [](const obs::Snapshot& snap, const char* name) {
    const obs::MetricSnapshot* metric = snap.find(name);
    return metric == nullptr ? std::uint64_t{0} : metric->value;
  };
  const std::uint64_t consumed =
      counter(after, "engine.warm.lease_consumed") -
      counter(before, "engine.warm.lease_consumed");
  const std::uint64_t copied = counter(after, "engine.warm.lease_copied") -
                               counter(before, "engine.warm.lease_copied");
  // Every warm step goes through the lease API exactly once, whichever
  // branch it takes. The plan has 9 unique configs over a handful of
  // chains, so warm steps must exist.
  EXPECT_GE(consumed + copied, 1u);
  const std::uint64_t runs = counter(after, "pipeline.runs") -
                             counter(before, "pipeline.runs");
  EXPECT_EQ(runs, 1u);
  const std::uint64_t items = counter(after, "pipeline.items") -
                              counter(before, "pipeline.items");
  EXPECT_EQ(items, plan.size());
}
#endif  // SPOOFTRACK_OBS_ENABLED

}  // namespace
}  // namespace spooftrack
