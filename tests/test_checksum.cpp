#include "netcore/checksum.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace spooftrack::netcore {
namespace {

TEST(Checksum, RfcExampleHeader) {
  // Classic worked example (e.g. RFC 1071 / textbook IPv4 header).
  const std::array<std::uint8_t, 20> header = {
      0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
      0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  EXPECT_EQ(internet_checksum(header), 0xb861);
}

TEST(Checksum, ValidatedHeaderSumsToZero) {
  std::array<std::uint8_t, 20> header = {
      0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
      0xb8, 0x61, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  EXPECT_EQ(internet_checksum(header), 0x0000);
}

TEST(Checksum, EmptyBufferIsAllOnes) {
  EXPECT_EQ(internet_checksum({}), 0xFFFF);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> odd = {0x01};
  // 0x0100 summed, complement = 0xFEFF.
  EXPECT_EQ(internet_checksum(odd), 0xFEFF);
}

TEST(Checksum, AccumulateIsChunkInvariant) {
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::uint16_t whole = internet_checksum(data);
  // Splitting at even offsets must give the same checksum.
  std::uint32_t acc = 0;
  acc = checksum_accumulate(std::span(data).first(4), acc);
  acc = checksum_accumulate(std::span(data).subspan(4), acc);
  EXPECT_EQ(checksum_finish(acc), whole);
}

TEST(Checksum, CarryFolding) {
  // Many 0xFFFF words force repeated carry folds.
  const std::vector<std::uint8_t> data(64, 0xFF);
  EXPECT_EQ(internet_checksum(data), 0x0000);
}

}  // namespace
}  // namespace spooftrack::netcore
