#include "bgp/catchment.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace spooftrack::bgp {
namespace {

class CatchmentTest : public ::testing::Test {
 protected:
  CatchmentTest()
      : graph_(test::small_topology()),
        policy_(graph_, test::clean_policy_config()),
        engine_(graph_, policy_),
        origin_(test::small_origin()) {}

  topology::AsGraph graph_;
  RoutingPolicy policy_;
  Engine engine_;
  OriginSpec origin_;
};

TEST_F(CatchmentTest, PartitionCoversAllRoutedAses) {
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto map = extract_catchments(outcome, config);
  // Everything except the origin is routed.
  EXPECT_EQ(map.routed_count(), graph_.size() - 1);
  EXPECT_EQ(map.count(0) + map.count(1), map.routed_count());
  EXPECT_EQ(map[*graph_.id_of(test::kOrigin)], kNoCatchment);
}

TEST_F(CatchmentTest, MembersMatchCounts) {
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto map = extract_catchments(outcome, config);
  for (LinkId link : {0u, 1u}) {
    EXPECT_EQ(map.members(link).size(), map.count(link));
    for (topology::AsId id : map.members(link)) {
      EXPECT_EQ(map[id], link);
    }
  }
}

TEST_F(CatchmentTest, SingleLinkCatchmentIsEverything) {
  Configuration config;
  config.announcements.push_back({0, 0, {}, {}});
  const auto outcome = engine_.run(origin_, config);
  const auto map = extract_catchments(outcome, config);
  EXPECT_EQ(map.count(0), graph_.size() - 1);
  EXPECT_EQ(map.count(1), 0u);
}

TEST_F(CatchmentTest, CatchmentIdentifiesLinkNotAnnouncementIndex) {
  // Announce only link 1: announcement index 0 maps to link 1.
  Configuration config;
  config.announcements.push_back({1, 0, {}, {}});
  const auto outcome = engine_.run(origin_, config);
  const auto map = extract_catchments(outcome, config);
  EXPECT_EQ(map[*graph_.id_of(test::kB)], 1u);
}

}  // namespace
}  // namespace spooftrack::bgp
