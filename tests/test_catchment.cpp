#include "bgp/catchment.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace spooftrack::bgp {
namespace {

class CatchmentTest : public ::testing::Test {
 protected:
  CatchmentTest()
      : graph_(test::small_topology()),
        policy_(graph_, test::clean_policy_config()),
        engine_(graph_, policy_),
        origin_(test::small_origin()) {}

  topology::AsGraph graph_;
  RoutingPolicy policy_;
  Engine engine_;
  OriginSpec origin_;
};

TEST_F(CatchmentTest, PartitionCoversAllRoutedAses) {
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto map = extract_catchments(outcome, config);
  // Everything except the origin is routed.
  EXPECT_EQ(map.routed_count(), graph_.size() - 1);
  EXPECT_EQ(map.count(0) + map.count(1), map.routed_count());
  EXPECT_EQ(map[*graph_.id_of(test::kOrigin)], kNoCatchment);
}

TEST_F(CatchmentTest, MembersMatchCounts) {
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto map = extract_catchments(outcome, config);
  for (LinkId link : {0u, 1u}) {
    EXPECT_EQ(map.members(link).size(), map.count(link));
    for (topology::AsId id : map.members(link)) {
      EXPECT_EQ(map[id], link);
    }
  }
}

TEST_F(CatchmentTest, CountsMatchesPerLinkScan) {
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto map = extract_catchments(outcome, config);

  // The one-pass totals equal a links x count(link) scan, and missing
  // cells never count towards any link.
  const auto totals = map.counts(kMaxCatchmentLinks);
  ASSERT_EQ(totals.size(), kMaxCatchmentLinks);
  std::size_t sum = 0;
  for (LinkId link = 0; link < kMaxCatchmentLinks; ++link) {
    EXPECT_EQ(totals[link], map.count(link)) << "link " << link;
    sum += totals[link];
  }
  EXPECT_EQ(sum, map.routed_count());

  // A shorter horizon just truncates; links beyond it are ignored.
  const auto narrow = map.counts(1);
  ASSERT_EQ(narrow.size(), 1u);
  EXPECT_EQ(narrow[0], map.count(0));
}

TEST_F(CatchmentTest, SingleLinkCatchmentIsEverything) {
  Configuration config;
  config.announcements.push_back({0, 0, {}, {}});
  const auto outcome = engine_.run(origin_, config);
  const auto map = extract_catchments(outcome, config);
  EXPECT_EQ(map.count(0), graph_.size() - 1);
  EXPECT_EQ(map.count(1), 0u);
}

TEST_F(CatchmentTest, CatchmentIdentifiesLinkNotAnnouncementIndex) {
  // Announce only link 1: announcement index 0 maps to link 1.
  Configuration config;
  config.announcements.push_back({1, 0, {}, {}});
  const auto outcome = engine_.run(origin_, config);
  const auto map = extract_catchments(outcome, config);
  EXPECT_EQ(map[*graph_.id_of(test::kB)], 1u);
}

}  // namespace
}  // namespace spooftrack::bgp
