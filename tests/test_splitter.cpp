#include "core/splitter.hpp"

#include <gtest/gtest.h>

#include "bgp/catchment.hpp"
#include <set>

#include "core/experiment.hpp"

namespace spooftrack::core {
namespace {

struct SplitWorld {
  SplitWorld() {
    TestbedConfig config;
    config.seed = 23;
    config.stub_count = 600;
    config.transit_count = 50;
    config.tier1_count = 5;
    config.measured_catchments = false;
    testbed = std::make_unique<PeeringTestbed>(config);
    baseline = testbed->generator().location_phase().front();
    outcome = testbed->route(baseline);

    // Cluster with the location phase only, leaving mid-size clusters.
    GeneratorOptions gen;
    gen.max_removals = 1;
    const auto plan = testbed->generator(gen).location_phase();
    deployment = testbed->deploy(plan);
    clustering = cluster_sources(deployment.matrix);
  }

  std::unique_ptr<PeeringTestbed> testbed;
  bgp::Configuration baseline;
  bgp::RoutingOutcome outcome;
  DeploymentResult deployment;
  Clustering clustering;
};

TEST(Splitter, HeuristicProposalsTargetStrictSubsets) {
  SplitWorld world;
  SplitterOptions options;
  options.verify_with_engine = false;
  const auto proposals = propose_splits(
      world.testbed->engine(), world.testbed->origin(), world.baseline,
      world.outcome, world.clustering, world.deployment.sources, options);
  ASSERT_FALSE(proposals.empty());
  for (const auto& proposal : proposals) {
    EXPECT_GT(proposal.members_moved, 0u);
    EXPECT_LT(proposal.members_moved, proposal.cluster_size);
    EXPECT_GT(proposal.balance, 0.0);
    EXPECT_LE(proposal.balance, 0.25 + 1e-9);  // x(1-x) peaks at 1/4
    EXPECT_NE(proposal.target, world.testbed->origin().asn);
    for (const auto& link : world.testbed->origin().links) {
      EXPECT_NE(proposal.target, link.provider);
    }
  }
  // Ranked: gain (balance * size) non-increasing.
  for (std::size_t i = 1; i < proposals.size(); ++i) {
    EXPECT_GE(proposals[i - 1].balance * proposals[i - 1].cluster_size,
              proposals[i].balance * proposals[i].cluster_size - 1e-9);
  }
}

TEST(Splitter, VerifiedProposalsActuallySplit) {
  SplitWorld world;
  const auto proposals = propose_splits(
      world.testbed->engine(), world.testbed->origin(), world.baseline,
      world.outcome, world.clustering, world.deployment.sources);
  ASSERT_FALSE(proposals.empty());
  // Every verified proposal, when deployed, partitions its cluster into
  // at least two catchment buckets.
  const auto members = world.clustering.members();
  for (const auto& proposal : proposals) {
    const auto outcome = world.testbed->route(
        proposal.to_poison_config(world.testbed->origin()));
    const auto map =
        bgp::extract_catchments(outcome, world.baseline);
    std::set<bgp::LinkId> buckets;
    for (std::uint32_t member : members[proposal.cluster]) {
      buckets.insert(map[world.deployment.sources[member]]);
    }
    EXPECT_GE(buckets.size(), 2u)
        << "proposal on AS" << proposal.target << " did not split";
    EXPECT_GT(proposal.balance, 0.0);  // Gini impurity of realised split
  }
}

TEST(Splitter, RespectsCaps) {
  SplitWorld world;
  SplitterOptions options;
  options.max_proposals = 3;
  options.per_cluster = 1;
  const auto proposals = propose_splits(
      world.testbed->engine(), world.testbed->origin(), world.baseline,
      world.outcome, world.clustering, world.deployment.sources, options);
  EXPECT_LE(proposals.size(), 3u);
  // per_cluster = 1: no two proposals share a cluster.
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    for (std::size_t j = i + 1; j < proposals.size(); ++j) {
      EXPECT_NE(proposals[i].cluster, proposals[j].cluster);
    }
  }
}

TEST(Splitter, ConfigBuildersAttachToTheRightLink) {
  SplitWorld world;
  const auto proposals = propose_splits(
      world.testbed->engine(), world.testbed->origin(), world.baseline,
      world.outcome, world.clustering, world.deployment.sources);
  ASSERT_FALSE(proposals.empty());
  const auto& proposal = proposals.front();

  const auto poison = proposal.to_poison_config(world.testbed->origin());
  EXPECT_EQ(poison.announcements.size(),
            world.testbed->origin().links.size());
  EXPECT_EQ(poison.announcements[proposal.link].poisoned,
            (std::vector<topology::Asn>{proposal.target}));
  EXPECT_NO_THROW(bgp::validate(poison, world.testbed->origin()));

  const auto community = proposal.to_community_config(world.testbed->origin());
  EXPECT_EQ(community.announcements[proposal.link].no_export_to,
            (std::vector<topology::Asn>{proposal.target}));
  EXPECT_NO_THROW(bgp::validate(community, world.testbed->origin()));
}

TEST(Splitter, DeployingProposalsSplitsClusters) {
  SplitWorld world;
  SplitterOptions options;
  options.max_proposals = 10;
  const auto proposals = propose_splits(
      world.testbed->engine(), world.testbed->origin(), world.baseline,
      world.outcome, world.clustering, world.deployment.sources, options);
  ASSERT_FALSE(proposals.empty());

  const std::uint32_t before = world.clustering.cluster_count;
  ClusterTracker tracker(world.deployment.sources.size());
  for (const auto& row : world.deployment.matrix) tracker.refine(row);

  std::vector<bgp::Configuration> extra;
  for (const auto& proposal : proposals) {
    extra.push_back(proposal.to_poison_config(world.testbed->origin()));
  }
  const auto extra_result = world.testbed->deploy(extra);
  for (const auto& row : extra_result.matrix) {
    // Columns of the new deployment use the new source set; re-map onto
    // the original source ordering via ids.
    (void)row;
  }
  // Re-deploy with original sources: build matrix rows from truth.
  for (std::size_t i = 0; i < extra.size(); ++i) {
    std::vector<bgp::LinkId> row(world.deployment.sources.size());
    for (std::size_t s = 0; s < world.deployment.sources.size(); ++s) {
      row[s] =
          extra_result.truth[i].link_of[world.deployment.sources[s]];
    }
    tracker.refine(row);
  }
  EXPECT_GT(tracker.cluster_count(), before)
      << "targeted poisoning should split at least one cluster";
}

}  // namespace
}  // namespace spooftrack::core
