#include "netcore/lpm.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace spooftrack::netcore {
namespace {

TEST(LpmTable, EmptyLookupIsNull) {
  LpmTable<int> table;
  EXPECT_TRUE(table.empty());
  EXPECT_FALSE(table.lookup(Ipv4Addr(1, 2, 3, 4)).has_value());
}

TEST(LpmTable, LongestPrefixWins) {
  LpmTable<int> table;
  table.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 8);
  table.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 16);
  table.insert(*Ipv4Prefix::parse("10.1.2.0/24"), 24);
  EXPECT_EQ(table.lookup(Ipv4Addr(10, 1, 2, 3)).value(), 24);
  EXPECT_EQ(table.lookup(Ipv4Addr(10, 1, 9, 9)).value(), 16);
  EXPECT_EQ(table.lookup(Ipv4Addr(10, 200, 0, 1)).value(), 8);
  EXPECT_FALSE(table.lookup(Ipv4Addr(11, 0, 0, 1)).has_value());
}

TEST(LpmTable, InsertReplacesValue) {
  LpmTable<int> table;
  const auto p = *Ipv4Prefix::parse("172.16.0.0/12");
  table.insert(p, 1);
  table.insert(p, 2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(Ipv4Addr(172, 20, 1, 1)).value(), 2);
}

TEST(LpmTable, DefaultRouteAtLengthZero) {
  LpmTable<int> table;
  table.insert(Ipv4Prefix::make(Ipv4Addr{0}, 0), 99);
  table.insert(*Ipv4Prefix::parse("192.0.2.0/24"), 1);
  EXPECT_EQ(table.lookup(Ipv4Addr(192, 0, 2, 5)).value(), 1);
  EXPECT_EQ(table.lookup(Ipv4Addr(8, 8, 8, 8)).value(), 99);
}

TEST(LpmTable, HostRoutes) {
  LpmTable<int> table;
  table.insert(*Ipv4Prefix::parse("192.0.2.1/32"), 1);
  EXPECT_EQ(table.lookup(Ipv4Addr(192, 0, 2, 1)).value(), 1);
  EXPECT_FALSE(table.lookup(Ipv4Addr(192, 0, 2, 2)).has_value());
}

TEST(LpmTable, ExactMatchIgnoresCoveringPrefixes) {
  LpmTable<int> table;
  table.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 8);
  EXPECT_FALSE(table.exact(*Ipv4Prefix::parse("10.1.0.0/16")).has_value());
  EXPECT_EQ(table.exact(*Ipv4Prefix::parse("10.0.0.0/8")).value(), 8);
}

TEST(LpmTable, EntriesRoundTrip) {
  LpmTable<int> table;
  table.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  table.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 2);
  table.insert(*Ipv4Prefix::parse("192.0.2.0/24"), 3);
  const auto entries = table.entries();
  ASSERT_EQ(entries.size(), 3u);
  LpmTable<int> copy;
  for (const auto& [prefix, value] : entries) copy.insert(prefix, value);
  EXPECT_EQ(copy.lookup(Ipv4Addr(10, 1, 0, 9)).value(), 2);
  EXPECT_EQ(copy.lookup(Ipv4Addr(192, 0, 2, 9)).value(), 3);
}

TEST(LpmTable, RandomizedAgainstLinearScan) {
  // Property check: trie lookups agree with a brute-force longest-match
  // scan over the inserted prefixes.
  util::Rng rng{1234};
  LpmTable<std::uint32_t> table;
  std::vector<std::pair<Ipv4Prefix, std::uint32_t>> reference;
  for (std::uint32_t i = 0; i < 300; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_int(4, 28));
    const Ipv4Addr base{static_cast<std::uint32_t>(rng.next())};
    const auto prefix = Ipv4Prefix::make(base, len);
    table.insert(prefix, i);
    // Replace duplicates in the reference to mirror insert semantics.
    bool replaced = false;
    for (auto& [p, v] : reference) {
      if (p == prefix) {
        v = i;
        replaced = true;
        break;
      }
    }
    if (!replaced) reference.emplace_back(prefix, i);
  }
  for (int trial = 0; trial < 2000; ++trial) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng.next())};
    std::optional<std::uint32_t> expected;
    int best_len = -1;
    for (const auto& [prefix, value] : reference) {
      if (prefix.contains(addr) && prefix.length() > best_len) {
        best_len = prefix.length();
        expected = value;
      }
    }
    EXPECT_EQ(table.lookup(addr), expected) << addr.to_string();
  }
}

}  // namespace
}  // namespace spooftrack::netcore
