#include "measure/ip2as.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace spooftrack::measure {
namespace {

TEST(Ip2As, MapsRouterAddressesToOwners) {
  const auto graph = test::small_topology();
  const AddressPlan plan(graph);
  Ip2AsOptions options;
  options.missing_fraction = 0.0;
  const auto map = Ip2AsMap::from_plan(graph, plan, test::kOrigin, options);
  for (topology::AsId id = 0; id < graph.size(); ++id) {
    EXPECT_EQ(map.lookup(plan.router_address(id, 0)), graph.asn_of(id));
    EXPECT_EQ(map.lookup(plan.router_address(id, 3)), graph.asn_of(id));
  }
}

TEST(Ip2As, ExperimentPrefixMapsToOrigin) {
  const auto graph = test::small_topology();
  const AddressPlan plan(graph);
  const auto map =
      Ip2AsMap::from_plan(graph, plan, test::kOrigin, {0.0, 1});
  EXPECT_EQ(map.lookup(AddressPlan::experiment_target()), test::kOrigin);
}

TEST(Ip2As, MissingFractionLeavesGaps) {
  const auto graph = test::small_topology();
  const AddressPlan plan(graph);
  const auto map = Ip2AsMap::from_plan(graph, plan, test::kOrigin, {1.0, 1});
  // Every per-AS prefix dropped; only the experiment prefix remains.
  EXPECT_EQ(map.size(), 1u);
  EXPECT_FALSE(map.lookup(plan.router_address(0, 0)).has_value());
}

TEST(Ip2As, UnknownSpaceUnmapped) {
  const auto graph = test::small_topology();
  const AddressPlan plan(graph);
  const auto map = Ip2AsMap::from_plan(graph, plan, test::kOrigin, {0.0, 1});
  EXPECT_FALSE(map.lookup(netcore::Ipv4Addr(8, 8, 8, 8)).has_value());
}

TEST(Ip2As, ManualAddOverridesLookup) {
  Ip2AsMap map;
  map.add(*netcore::Ipv4Prefix::parse("10.0.0.0/8"), 64500);
  map.add(*netcore::Ipv4Prefix::parse("10.9.0.0/16"), 64501);
  EXPECT_EQ(map.lookup(netcore::Ipv4Addr(10, 9, 1, 1)), 64501u);
  EXPECT_EQ(map.lookup(netcore::Ipv4Addr(10, 8, 1, 1)), 64500u);
}

TEST(AddressPlanTest, PrefixesAreDisjoint) {
  const auto graph = test::small_topology();
  const AddressPlan plan(graph);
  for (topology::AsId a = 0; a < graph.size(); ++a) {
    for (topology::AsId b = a + 1; b < graph.size(); ++b) {
      EXPECT_FALSE(plan.prefix_of(a).contains(plan.prefix_of(b)));
      EXPECT_FALSE(plan.prefix_of(b).contains(plan.prefix_of(a)));
    }
  }
}

TEST(AddressPlanTest, BorderAddressesStayInOwnerPrefix) {
  const auto graph = test::small_topology();
  const AddressPlan plan(graph);
  const auto addr = plan.border_address(1, 2, 3);
  EXPECT_TRUE(plan.prefix_of(1).contains(addr));
  // Stable across calls.
  EXPECT_EQ(plan.border_address(1, 2, 3), addr);
  // Different link, different slot (overwhelmingly likely by hash).
  EXPECT_NE(plan.border_address(1, 2, 4), addr);
}

}  // namespace
}  // namespace spooftrack::measure
