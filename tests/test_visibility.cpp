#include "measure/visibility.hpp"

#include <gtest/gtest.h>

namespace spooftrack::measure {
namespace {

constexpr bgp::LinkId kMissing = bgp::kNoCatchment;

InferenceResult make_result(std::vector<bgp::LinkId> catchments,
                            std::vector<std::uint8_t> observed) {
  InferenceResult result;
  result.catchments.link_of = std::move(catchments);
  result.observed = std::move(observed);
  return result;
}

TEST(Visibility, BaselineSourcesAreObservedAndResolved) {
  const auto first =
      make_result({0, kMissing, 1, 0}, {1, 0, 1, 0});
  EXPECT_EQ(baseline_sources(first),
            (std::vector<topology::AsId>{0, 2}));
}

TEST(Visibility, MatrixUsesObservedCells) {
  std::vector<InferenceResult> per_config;
  per_config.push_back(make_result({0, 1, 1}, {1, 1, 1}));
  per_config.push_back(make_result({1, 1, 0}, {1, 1, 1}));
  const std::vector<topology::AsId> sources{0, 2};
  const auto matrix = build_matrix(per_config, sources);
  ASSERT_EQ(matrix.size(), 2u);
  const auto rows = matrix.to_rows();
  EXPECT_EQ(rows[0], (std::vector<bgp::LinkId>{0, 1}));
  EXPECT_EQ(rows[1], (std::vector<bgp::LinkId>{1, 0}));
}

TEST(Visibility, ImputationFollowsSmax) {
  // Sources 0 and 1 always share a catchment where both observed; source 1
  // is missing in the last configuration and must inherit source 0's cell.
  CatchmentStore matrix = CatchmentMatrix{
      {0, 0, 1},
      {1, 1, 1},
      {0, kMissing, 0},
  };
  impute_missing(matrix);
  EXPECT_EQ(matrix.link_at(2, 1), 0u);
}

TEST(Visibility, ImputationPrefersMostFrequentCompanion) {
  // Source 2 matches source 1 twice and source 0 once; missing cells take
  // source 1's value.
  CatchmentStore matrix = CatchmentMatrix{
      {0, 1, 1},
      {2, 3, 3},
      {4, 5, kMissing},
  };
  impute_missing(matrix);
  EXPECT_EQ(matrix.link_at(2, 2), 5u);
}

TEST(Visibility, NoCompanionLeavesCellMissing) {
  // Source 1 never shares a catchment with anyone: cell stays missing.
  CatchmentStore matrix = CatchmentMatrix{
      {0, 1},
      {0, kMissing},
  };
  // Companion source 0 never matched source 1 (0 vs 1), so frequency 0.
  impute_missing(matrix);
  EXPECT_EQ(matrix.link_at(1, 1), kMissing);
}

TEST(Visibility, TwoPassImputationChains) {
  // Source 2's s_max is source 1, which itself needs imputation from
  // source 0 in config 1; the second pass completes the chain.
  CatchmentStore matrix = CatchmentMatrix{
      {0, 0, 0},
      {1, kMissing, kMissing},
  };
  impute_missing(matrix);
  EXPECT_EQ(matrix.link_at(1, 1), 1u);
  EXPECT_EQ(matrix.link_at(1, 2), 1u);
}

TEST(Visibility, EmptyMatrixIsFine) {
  CatchmentStore empty;
  EXPECT_NO_THROW(impute_missing(empty));
  CatchmentStore no_sources = CatchmentMatrix{{}};
  EXPECT_NO_THROW(impute_missing(no_sources));
}

}  // namespace
}  // namespace spooftrack::measure
