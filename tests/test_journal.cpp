// Recovery harness for spooftrack::journal (docs/checkpointing.md).
//
// Two layers. Unit tests pin the on-disk format: CRC32C framing, atomic
// segment rotation, torn-tail truncation, identity binding, and the
// partial-artifact digest chain. The crash matrix is the acceptance
// contract: a deterministic kill-point at every journal barrier, crossed
// with worker counts {1, 2, 8} and pipeline depths {1, 4} under an active
// fault plan, must leave a journal from which --resume reproduces the
// uninterrupted deployment byte-for-byte — and resuming twice is a no-op.
#include "journal/journal.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/io.hpp"
#include "fault/fault.hpp"
#include "util/crc32c.hpp"
#include "util/fsio.hpp"

namespace spooftrack::journal {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("spooftrack-journal-" + tag + "-" +
               std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

ConfigRecord sample_record(std::uint64_t i) {
  ConfigRecord record;
  record.config_index = i;
  record.config_hash = 0x1234'5678 + i * 31;
  record.chain = static_cast<std::uint32_t>(i % 3);
  record.chain_pos = static_cast<std::uint32_t>(i / 3);
  record.row_digest = 0xD16E57 + i;
  record.grade = i % 4 == 3 ? fault::Grade::kDegraded : fault::Grade::kGood;
  record.deploy_attempts = 1 + static_cast<std::uint32_t>(i % 2);
  record.feed_entries = 40 + static_cast<std::uint32_t>(i);
  record.feed_faults = static_cast<std::uint32_t>(i % 5);
  record.traces = 120;
  record.trace_faults = static_cast<std::uint32_t>(i % 7);
  return record;
}

TEST(Crc32c, MatchesKnownVector) {
  // The canonical CRC32C check value for "123456789".
  EXPECT_EQ(util::crc32c("123456789"), 0xE3069283u);
  // Incremental == one-shot.
  std::uint32_t crc = util::crc32c_init();
  crc = util::crc32c_update(crc, "1234", 4);
  crc = util::crc32c_update(crc, "56789", 5);
  EXPECT_EQ(util::crc32c_final(crc), 0xE3069283u);
}

TEST(JournalWriter, AppendRotateReplayRoundTrip) {
  ScratchDir dir("roundtrip");
  const CampaignIdentity identity{0xABCDEF, 11};
  JournalOptions options;
  options.dir = dir.str();
  options.segment_records = 3;
  options.fsync = false;

  std::vector<ConfigRecord> written;
  {
    JournalWriter writer(options, identity);
    for (std::uint64_t i = 0; i < 10; ++i) {
      written.push_back(sample_record(i));
      writer.append(written.back());
    }
  }
  // 10 records at 3/segment: three sealed segments plus an active one.
  EXPECT_TRUE(fs::exists(dir.path() / "seg-000000.wal"));
  EXPECT_TRUE(fs::exists(dir.path() / "seg-000002.wal"));
  EXPECT_TRUE(fs::exists(dir.path() / "seg-000003.open"));

  const ReplayResult replayed = replay(dir.str(), identity);
  EXPECT_EQ(replayed.records, written);
  EXPECT_EQ(replayed.stats.records, 10u);
  EXPECT_EQ(replayed.stats.torn_bytes, 0u);

  // Reopening for resume recovers the same records and appends after them.
  JournalOptions resume = options;
  resume.resume = true;
  JournalWriter writer(resume, identity);
  EXPECT_EQ(writer.recovered(), written);
  writer.append(sample_record(10));
  EXPECT_EQ(replay(dir.str(), identity).records.size(), 11u);
}

TEST(JournalWriter, FreshJournalWipesPreviousState) {
  ScratchDir dir("wipe");
  const CampaignIdentity identity{7, 3};
  JournalOptions options;
  options.dir = dir.str();
  options.fsync = false;
  {
    JournalWriter writer(options, identity);
    writer.append(sample_record(0));
  }
  {
    // Same dir, fresh (resume = false): previous records must not leak.
    JournalWriter writer(options, identity);
  }
  EXPECT_TRUE(replay(dir.str(), identity).records.empty());
}

TEST(JournalWriter, TornTailIsTruncatedOnRecovery) {
  ScratchDir dir("torn");
  const CampaignIdentity identity{42, 8};
  JournalOptions options;
  options.dir = dir.str();
  options.segment_records = 100;
  options.fsync = false;

  std::vector<ConfigRecord> written;
  {
    JournalWriter writer(options, identity);
    for (std::uint64_t i = 0; i < 4; ++i) {
      written.push_back(sample_record(i));
      writer.append(written.back());
    }
  }
  // Simulate a crash mid-append: half a frame of garbage at the tail.
  {
    std::ofstream out(dir.path() / "seg-000000.open",
                      std::ios::binary | std::ios::app);
    out.write("\x30\x00\x00\x00gar", 7);
  }
  JournalOptions resume = options;
  resume.resume = true;
  JournalWriter writer(resume, identity);
  EXPECT_EQ(writer.recovered(), written);
  EXPECT_GT(writer.recovery().torn_bytes, 0u);
  // The torn bytes are gone from disk: appending after recovery yields a
  // fully valid journal again.
  writer.append(sample_record(4));
  EXPECT_EQ(replay(dir.str(), identity).records.size(), 5u);
}

TEST(JournalWriter, IdentityMismatchIsJournalError) {
  ScratchDir dir("identity");
  JournalOptions options;
  options.dir = dir.str();
  options.fsync = false;
  {
    JournalWriter writer(options, CampaignIdentity{1, 4});
    writer.append(sample_record(0));
  }
  JournalOptions resume = options;
  resume.resume = true;
  EXPECT_THROW(JournalWriter(resume, CampaignIdentity{2, 4}), JournalError);
  EXPECT_THROW(replay(dir.str(), CampaignIdentity{1, 5}), JournalError);
}

TEST(JournalWriter, SealedSegmentCorruptionIsFatal) {
  ScratchDir dir("sealed");
  const CampaignIdentity identity{9, 8};
  JournalOptions options;
  options.dir = dir.str();
  options.segment_records = 2;
  options.fsync = false;
  {
    JournalWriter writer(options, identity);
    for (std::uint64_t i = 0; i < 5; ++i) writer.append(sample_record(i));
  }
  // Flip one payload byte in a *sealed* segment: unlike the active tail,
  // sealed corruption is unrecoverable.
  const fs::path sealed = dir.path() / "seg-000001.wal";
  std::string bytes = util::read_file(sealed.string());
  bytes[bytes.size() / 2] ^= 0x01;
  util::atomic_write_file(sealed.string(), bytes, false);
  JournalOptions resume = options;
  resume.resume = true;
  EXPECT_THROW(JournalWriter(resume, identity), JournalError);
  EXPECT_THROW(replay(dir.str(), identity), JournalError);
}

TEST(JournalWriter, RecordOutsidePlanIsJournalError) {
  ScratchDir dir("outside");
  const CampaignIdentity identity{3, 8};
  JournalOptions options;
  options.dir = dir.str();
  options.fsync = false;
  {
    // The writer trusts its caller; a record beyond the plan is caught by
    // the recovery scan, not by append().
    JournalWriter writer(options, identity);
    writer.append(sample_record(9));
  }
  JournalOptions resume = options;
  resume.resume = true;
  EXPECT_THROW(
      {
        JournalWriter reopened(resume, identity);
        (void)reopened;
      },
      JournalError);
  EXPECT_THROW(replay(dir.str(), identity), JournalError);
}

TEST(PartialArtifact, RoundTripAndDigestVerification) {
  ScratchDir dir("partial");
  PartialMeasurement partial;
  partial.inference.catchments.link_of = {0, 1, 2, bgp::kNoCatchment, 1};
  partial.inference.observed = {1, 1, 1, 0, 1};
  partial.inference.covered_count = 4;
  partial.inference.multi_catchment_fraction = 0.25;
  partial.feed_entries = 17;
  partial.feed_faults = 2;
  partial.traces = 40;
  partial.trace_faults = 3;

  const std::uint64_t digest = save_partial(dir.str(), 5, partial, false);
  EXPECT_EQ(load_partial(dir.str(), 5, digest), partial);

  // Wrong digest, wrong index, missing file: all JournalError.
  EXPECT_THROW(load_partial(dir.str(), 5, digest ^ 1), JournalError);
  EXPECT_THROW(load_partial(dir.str(), 6, digest), JournalError);

  // Every single-byte truncation and every single-byte flip is rejected.
  const std::string path = partial_path(dir.str(), 5);
  const std::string bytes = util::read_file(path);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    util::atomic_write_file(path, std::string_view(bytes).substr(0, len),
                            false);
    EXPECT_THROW(load_partial(dir.str(), 5, digest), JournalError)
        << "truncated at " << len;
  }
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::string flipped = bytes;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x20);
    util::atomic_write_file(path, flipped, false);
    EXPECT_THROW(load_partial(dir.str(), 5, digest), JournalError)
        << "flipped at " << at;
  }
}

// ---------------------------------------------------------------------------
// Crash matrix: kill-point x workers x depth, byte-identical resume.
// ---------------------------------------------------------------------------

core::TestbedConfig crash_testbed() {
  core::TestbedConfig config;
  config.seed = 11;
  config.tier1_count = 4;
  config.transit_count = 25;
  config.stub_count = 150;
  config.probe_count = 60;
  config.traceroute_rounds = 1;
  config.feed.peer_count = 30;
  // Active fault plan: measurement-plane faults plus deploy failures with a
  // tight retry budget, so the journal also has to carry degraded grades,
  // retry counts and abandoned configurations through a resume.
  config.faults.set_all(0.05);
  config.faults.deploy_failure_prob = 0.3;
  config.faults.deploy_retry_budget = 1;
  return config;
}

std::vector<bgp::Configuration> crash_plan(
    const core::PeeringTestbed& testbed) {
  core::GeneratorOptions gen;
  gen.max_removals = 1;
  auto plan = testbed.generator(gen).location_phase();
  plan.push_back(plan[2]);  // memo fan-out: shared unique outcome
  plan.push_back(plan[0]);
  return plan;
}

core::DeploymentArtifact deploy_artifact(const core::TestbedConfig& config) {
  const core::PeeringTestbed testbed(config);
  const auto result = testbed.deploy(crash_plan(testbed));
  return core::make_artifact(result, config.seed, testbed.graph().size(),
                             testbed.origin().links.size());
}

void expect_same_quality(const core::DeploymentResult& a,
                         const core::DeploymentResult& b) {
  ASSERT_EQ(a.quality.size(), b.quality.size());
  for (std::size_t i = 0; i < a.quality.size(); ++i) {
    EXPECT_EQ(a.quality[i], b.quality[i]) << "config " << i;
  }
}

TEST(CrashMatrix, EveryKillPointResumesByteIdentical) {
  const core::TestbedConfig base = crash_testbed();
  const core::DeploymentArtifact reference = deploy_artifact(base);

  const fault::Site sites[] = {
      fault::Site::kJournalPreWrite,
      fault::Site::kJournalMidRecord,
      fault::Site::kJournalPreRename,
      fault::Site::kJournalPreFsync,
  };
  const std::size_t workers[] = {1, 2, 8};
  const std::size_t depths[] = {1, 4};

  ScratchDir dir("matrix");
  std::size_t cell = 0;
  for (const fault::Site site : sites) {
    for (const std::size_t worker_count : workers) {
      for (const std::size_t depth : depths) {
        SCOPED_TRACE("site=" + std::string(fault::site_name(site)) +
                     " workers=" + std::to_string(worker_count) +
                     " depth=" + std::to_string(depth));
        const std::string journal_dir =
            (dir.path() / ("cell-" + std::to_string(cell++))).string();

        core::TestbedConfig crashed = base;
        crashed.measure_workers = worker_count;
        crashed.pipeline_depth = depth;
        crashed.journal.dir = journal_dir;
        crashed.journal.segment_records = 3;  // rotations mid-campaign
        crashed.journal.fsync = false;        // format + barriers, full speed
        crashed.faults.crash_site = site;
        // Appends commit one config each; rotation barriers fire once per
        // sealed segment. Ordinal 2 lands mid-campaign for both kinds.
        crashed.faults.crash_at =
            (site == fault::Site::kJournalPreRename ||
             site == fault::Site::kJournalPreFsync)
                ? 2
                : 5;
        {
          const core::PeeringTestbed testbed(crashed);
          EXPECT_THROW(testbed.deploy(crash_plan(testbed)),
                       fault::SimulatedCrash);
        }

        core::TestbedConfig resumed = crashed;
        resumed.faults.crash_at = 0;  // the kill-point is gone on restart
        resumed.journal.resume = true;
        const core::PeeringTestbed testbed(resumed);
        const auto result = testbed.deploy(crash_plan(testbed));
        EXPECT_GT(result.resumed_configs, 0u);
        const auto artifact =
            core::make_artifact(result, resumed.seed, testbed.graph().size(),
                                testbed.origin().links.size());
        EXPECT_EQ(artifact, reference);
      }
    }
  }
}

TEST(CrashMatrix, DoubleResumeIsIdempotent) {
  const core::TestbedConfig base = crash_testbed();
  const core::DeploymentArtifact reference = deploy_artifact(base);
  ScratchDir dir("double");

  core::TestbedConfig crashed = base;
  crashed.journal.dir = dir.str();
  crashed.journal.segment_records = 3;
  crashed.journal.fsync = false;
  crashed.faults.crash_site = fault::Site::kJournalMidRecord;
  crashed.faults.crash_at = 4;
  {
    const core::PeeringTestbed testbed(crashed);
    EXPECT_THROW(testbed.deploy(crash_plan(testbed)), fault::SimulatedCrash);
  }

  core::TestbedConfig resumed = crashed;
  resumed.faults.crash_at = 0;
  resumed.journal.resume = true;
  const core::PeeringTestbed testbed(resumed);
  const auto first = testbed.deploy(crash_plan(testbed));
  const auto second = testbed.deploy(crash_plan(testbed));
  EXPECT_EQ(core::make_artifact(first, base.seed, testbed.graph().size(), 7),
            core::make_artifact(second, base.seed, testbed.graph().size(), 7));
  EXPECT_EQ(core::make_artifact(second, base.seed, testbed.graph().size(),
                                testbed.origin().links.size()),
            reference);
  // The second resume found every configuration already committed.
  EXPECT_EQ(second.resumed_configs, first.configs.size());
  expect_same_quality(first, second);
}

TEST(CrashMatrix, ResumeAcrossDifferentParallelism) {
  // Crash under a single-worker barrier-ish run, resume with 8 workers and
  // a deep pipeline: identity excludes execution shape, results don't move.
  const core::TestbedConfig base = crash_testbed();
  const core::DeploymentArtifact reference = deploy_artifact(base);
  ScratchDir dir("reshape");

  core::TestbedConfig crashed = base;
  crashed.measure_workers = 1;
  crashed.pipeline_depth = 1;
  crashed.journal.dir = dir.str();
  crashed.journal.fsync = false;
  crashed.faults.crash_site = fault::Site::kJournalPreWrite;
  crashed.faults.crash_at = 3;
  {
    const core::PeeringTestbed testbed(crashed);
    EXPECT_THROW(testbed.deploy(crash_plan(testbed)), fault::SimulatedCrash);
  }

  core::TestbedConfig resumed = crashed;
  resumed.measure_workers = 8;
  resumed.pipeline_depth = 4;
  resumed.faults.crash_at = 0;
  resumed.journal.resume = true;
  const core::PeeringTestbed testbed(resumed);
  const auto result = testbed.deploy(crash_plan(testbed));
  EXPECT_EQ(core::make_artifact(result, base.seed, testbed.graph().size(),
                                testbed.origin().links.size()),
            reference);
}

TEST(Journal, ZeroRateCrashPlanWithJournalMatchesJournalOff) {
  // Journaling plus an armed-but-never-reached kill-point must not perturb
  // a single byte of the deployment (the fault layer's no-op contract
  // extended to the journal layer).
  core::TestbedConfig plain = crash_testbed();
  plain.faults = {};  // zero-rate: injector disabled
  const core::DeploymentArtifact reference = deploy_artifact(plain);

  ScratchDir dir("zero");
  core::TestbedConfig journaled = plain;
  journaled.journal.dir = dir.str();
  journaled.journal.fsync = false;
  journaled.faults.crash_site = fault::Site::kJournalPreWrite;
  journaled.faults.crash_at = 1u << 20;  // armed, never reached
  EXPECT_EQ(deploy_artifact(journaled), reference);
}

TEST(Journal, GroundTruthDeploymentRejectsJournaling) {
  core::TestbedConfig config = crash_testbed();
  config.faults = {};
  config.measured_catchments = false;
  config.journal.dir = "/tmp/never-created";
  const core::PeeringTestbed testbed(config);
  EXPECT_THROW(testbed.deploy(crash_plan(testbed)), std::invalid_argument);
}

TEST(Journal, CorruptPartialOnResumeIsJournalError) {
  const core::TestbedConfig base = crash_testbed();
  ScratchDir dir("badpart");

  core::TestbedConfig crashed = base;
  crashed.journal.dir = dir.str();
  crashed.journal.fsync = false;
  crashed.faults.crash_site = fault::Site::kJournalPreWrite;
  crashed.faults.crash_at = 4;
  {
    const core::PeeringTestbed testbed(crashed);
    EXPECT_THROW(testbed.deploy(crash_plan(testbed)), fault::SimulatedCrash);
  }
  // Corrupt one committed partial: the recorded digest no longer matches.
  const std::string partial = partial_path(dir.str(), 0);
  std::string bytes = util::read_file(partial);
  bytes[bytes.size() / 3] ^= 0x40;
  util::atomic_write_file(partial, bytes, false);

  core::TestbedConfig resumed = crashed;
  resumed.faults.crash_at = 0;
  resumed.journal.resume = true;
  const core::PeeringTestbed testbed(resumed);
  EXPECT_THROW(testbed.deploy(crash_plan(testbed)), JournalError);
}

}  // namespace
}  // namespace spooftrack::journal
