#include "core/policy_audit.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace spooftrack::core {
namespace {

class PolicyAuditTest : public ::testing::Test {
 protected:
  PolicyAuditTest()
      : graph_(test::small_topology()),
        policy_(graph_, test::clean_policy_config()),
        engine_(graph_, policy_),
        origin_(test::small_origin()) {}

  topology::AsId id(topology::Asn asn) const { return *graph_.id_of(asn); }

  topology::AsGraph graph_;
  bgp::RoutingPolicy policy_;
  bgp::Engine engine_;
  bgp::OriginSpec origin_;
};

TEST_F(PolicyAuditTest, CleanPolicyIsFullyCompliant) {
  const auto config = test::announce_all(2);
  const auto outcome = engine_.run(origin_, config);
  const auto stats = audit_compliance(engine_, origin_, config, outcome);
  EXPECT_EQ(stats.audited, graph_.size() - 1);
  EXPECT_DOUBLE_EQ(stats.best_relationship_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(stats.both_fraction(), 1.0);
}

TEST_F(PolicyAuditTest, PeerProviderSwapViolatesBestRelationship) {
  // Make t1 prefer provider routes over peer routes. t1 has no providers
  // (tier-1), so swap p2's preferences instead: p2 hears a customer seed
  // (link 1) — swapping cannot affect it. Use d: it only has providers.
  // The right violator is t2: it hears customer p2 and peer t1. Swapping
  // peer/provider at t2 does not change anything either (customer wins).
  //
  // Build the violation at p1 by withdrawing link 0: p1 then hears only a
  // provider route (t1). Still no choice. So instead swap at t1 with both
  // links active: t1 hears customer p1 (seed-derived) and peer t2 — the
  // customer route still wins under a swap. Conclusion: in this small
  // topology only an AS with peer+provider alternatives can violate;
  // that is t1/t2 for withdrawn configurations.
  bgp::AsPolicyFlags flags;
  flags.peer_provider_swapped = true;
  policy_.override_flags(id(test::kP1), flags);

  // Announce only link 1: p1's alternatives are provider t1's route (and
  // nothing else) — still unique. The fixture cannot express a peer vs
  // provider choice below the tier-1s, so assert the audit still reports
  // full best-relationship compliance (no false positives).
  bgp::Configuration config;
  config.announcements.push_back({1, 0, {}, {}});
  const auto outcome = engine_.run(origin_, config);
  const auto stats = audit_compliance(engine_, origin_, config, outcome);
  EXPECT_DOUBLE_EQ(stats.best_relationship_fraction(), 1.0);
}

TEST_F(PolicyAuditTest, ShortestViolatorFailsSecondCriterion) {
  // d multihomes to p1 and p2 with equal-length provider routes; a
  // shortest violator at d cannot fail (lengths tie). Lengthen link 0's
  // path via prepending so the tie-break becomes a real length choice.
  bgp::AsPolicyFlags flags;
  flags.shortest_violator = true;
  policy_.override_flags(id(test::kD), flags);

  bgp::Configuration config;
  config.announcements.push_back({0, 4, {}});
  config.announcements.push_back({1, 0, {}, {}});
  const auto outcome = engine_.run(origin_, config);
  const auto stats = audit_compliance(engine_, origin_, config, outcome);

  // d followed its IGP-like score; whether that picked the long path is
  // seed-dependent, so assert consistency instead: compliance failed iff d
  // kept the longer route.
  const bool kept_long = outcome.path_length(id(test::kD)) > 2;
  if (kept_long) {
    EXPECT_LT(stats.both_fraction(), 1.0);
    EXPECT_EQ(stats.both_criteria + 1, stats.audited);
  } else {
    EXPECT_DOUBLE_EQ(stats.both_fraction(), 1.0);
  }
  // Relationship criterion is untouched by tie-break games.
  EXPECT_DOUBLE_EQ(stats.best_relationship_fraction(), 1.0);
}

TEST_F(PolicyAuditTest, ForcedLongChoiceDetected) {
  // Deterministic violation: force d's tiebreak toward p1 by making d a
  // shortest violator whose score prefers p1... the score is hash-based,
  // so instead verify the audit mechanics directly with both prepend
  // directions; in exactly one of them the score-preferred neighbor has
  // the longer path, producing a detectable violation.
  bgp::AsPolicyFlags flags;
  flags.shortest_violator = true;
  policy_.override_flags(id(test::kD), flags);

  std::size_t violations = 0;
  for (bgp::LinkId prep : {0u, 1u}) {
    bgp::Configuration config;
    config.announcements.push_back({0, prep == 0 ? 4u : 0u, {}});
    config.announcements.push_back({1, prep == 1 ? 4u : 0u, {}});
    const auto outcome = engine_.run(origin_, config);
    const auto stats = audit_compliance(engine_, origin_, config, outcome);
    violations += stats.audited - stats.both_criteria;
  }
  // The hash score ranks (d,p1) vs (d,p2) one way; prepending the
  // preferred side forces a long choice exactly once.
  EXPECT_EQ(violations, 1u);
}

}  // namespace
}  // namespace spooftrack::core
