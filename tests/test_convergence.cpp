#include "measure/convergence.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace spooftrack::measure {
namespace {

class ConvergenceTest : public ::testing::Test {
 protected:
  ConvergenceTest()
      : graph_(test::small_topology()),
        policy_(graph_, test::clean_policy_config()),
        engine_(graph_, policy_),
        origin_(test::small_origin()) {}

  topology::AsGraph graph_;
  bgp::RoutingPolicy policy_;
  bgp::Engine engine_;
  bgp::OriginSpec origin_;
};

TEST_F(ConvergenceTest, SettledRoundsAreRecorded) {
  const auto outcome = engine_.run(origin_, test::announce_all(2));
  ASSERT_EQ(outcome.settled_round.size(), graph_.size());
  // Providers settle in round 1 (direct seed); deeper ASes later.
  const auto p1 = *graph_.id_of(test::kP1);
  const auto c = *graph_.id_of(test::kC);
  EXPECT_EQ(outcome.settled_round[p1], 1u);
  EXPECT_GE(outcome.settled_round[c], outcome.settled_round[p1]);
  // The origin never changes.
  EXPECT_EQ(outcome.settled_round[*graph_.id_of(test::kOrigin)], 0u);
  // Nothing settles after the last round.
  for (std::uint32_t r : outcome.settled_round) {
    EXPECT_LE(r, outcome.rounds);
  }
}

TEST_F(ConvergenceTest, SecondsBoundedByRoundsTimesWindow) {
  const auto outcome = engine_.run(origin_, test::announce_all(2));
  ConvergenceOptions options;
  options.spread = 0.0;  // fixed pacing window
  options.mrai_seconds = 10.0;
  const ConvergenceModel model(options);
  const auto seconds = model.per_as_seconds(outcome);
  for (topology::AsId as = 0; as < graph_.size(); ++as) {
    const double rounds = outcome.settled_round[as];
    if (rounds == 0) {
      EXPECT_DOUBLE_EQ(seconds[as], 0.0);
    } else {
      EXPECT_GE(seconds[as], 0.0);
      EXPECT_LE(seconds[as], rounds * 10.0);
    }
  }
  EXPECT_GT(model.settle_seconds(outcome), 0.0);
}

TEST_F(ConvergenceTest, SpreadStaysWithinBounds) {
  const auto outcome = engine_.run(origin_, test::announce_all(2));
  ConvergenceOptions options;
  options.mrai_seconds = 20.0;
  options.spread = 0.5;
  const ConvergenceModel model(options);
  const auto seconds = model.per_as_seconds(outcome);
  for (topology::AsId as = 0; as < graph_.size(); ++as) {
    const double rounds = outcome.settled_round[as];
    EXPECT_GE(seconds[as], 0.0);
    EXPECT_LE(seconds[as], rounds * 30.0 + 1e-9);  // window <= 30 s
  }
}

TEST_F(ConvergenceTest, ConvergedByChecksTheBudget) {
  const auto outcome = engine_.run(origin_, test::announce_all(2));
  ConvergenceOptions options;
  options.spread = 0.0;
  options.mrai_seconds = 15.0;
  const ConvergenceModel model(options);
  const double settle = model.settle_seconds(outcome);
  EXPECT_TRUE(model.converged_by(outcome, settle));
  EXPECT_FALSE(model.converged_by(outcome, settle - 1.0));
  // The paper's 2.5-minute convergence budget comfortably covers this
  // small topology.
  EXPECT_TRUE(model.converged_by(outcome, 150.0));
}

TEST_F(ConvergenceTest, DeterministicPerSeed) {
  const auto outcome = engine_.run(origin_, test::announce_all(2));
  const ConvergenceModel a{{15.0, 0.5, 1}};
  const ConvergenceModel b{{15.0, 0.5, 1}};
  const ConvergenceModel c{{15.0, 0.5, 2}};
  EXPECT_EQ(a.per_as_seconds(outcome), b.per_as_seconds(outcome));
  EXPECT_NE(a.per_as_seconds(outcome), c.per_as_seconds(outcome));
}

}  // namespace
}  // namespace spooftrack::measure
