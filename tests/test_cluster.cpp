#include "core/cluster.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace spooftrack::core {
namespace {

constexpr bgp::LinkId kMissing = bgp::kNoCatchment;

TEST(ClusterTracker, StartsWithSingleCluster) {
  ClusterTracker tracker(5);
  EXPECT_EQ(tracker.cluster_count(), 1u);
  EXPECT_DOUBLE_EQ(tracker.mean_cluster_size(), 5.0);
}

TEST(ClusterTracker, SplitsOnCatchmentBoundaries) {
  ClusterTracker tracker(6);
  const std::vector<bgp::LinkId> row = {0, 0, 1, 1, 2, 2};
  EXPECT_EQ(tracker.refine(row), 3u);
  const auto sizes = tracker.current().sizes();
  EXPECT_EQ(sizes, (std::vector<std::uint32_t>{2, 2, 2}));
}

TEST(ClusterTracker, NoSplitWhenCatchmentCoversCluster) {
  // "we do not split kappa if kappa intersect alpha = kappa"
  ClusterTracker tracker(4);
  tracker.refine(std::vector<bgp::LinkId>{0, 0, 1, 1});
  EXPECT_EQ(tracker.cluster_count(), 2u);
  // A row that does not separate anything further keeps the partition.
  tracker.refine(std::vector<bgp::LinkId>{3, 3, 5, 5});
  EXPECT_EQ(tracker.cluster_count(), 2u);
}

TEST(ClusterTracker, SuccessiveRefinementIntersects) {
  ClusterTracker tracker(4);
  tracker.refine(std::vector<bgp::LinkId>{0, 0, 1, 1});
  tracker.refine(std::vector<bgp::LinkId>{0, 1, 0, 1});
  EXPECT_EQ(tracker.cluster_count(), 4u);
  EXPECT_DOUBLE_EQ(tracker.mean_cluster_size(), 1.0);
}

TEST(ClusterTracker, MissingCatchmentIsItsOwnBucket) {
  ClusterTracker tracker(3);
  tracker.refine(std::vector<bgp::LinkId>{0, kMissing, 0});
  EXPECT_EQ(tracker.cluster_count(), 2u);
}

TEST(ClusterTracker, OrderInvariantFinalPartition) {
  // The final clustering is the intersection over all rows, so row order
  // must not matter.
  const std::vector<std::vector<bgp::LinkId>> rows = {
      {0, 0, 1, 1, 2, 2, 0, 1},
      {0, 1, 1, 0, 2, 0, 0, 1},
      {2, 2, 2, 2, 2, 2, 0, 0},
  };
  auto final_sizes = [&](std::vector<std::size_t> order) {
    ClusterTracker tracker(8);
    for (std::size_t i : order) tracker.refine(rows[i]);
    auto sizes = tracker.current().sizes();
    std::sort(sizes.begin(), sizes.end());
    return sizes;
  };
  const auto a = final_sizes({0, 1, 2});
  const auto b = final_sizes({2, 1, 0});
  const auto c = final_sizes({1, 2, 0});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(ClusterTracker, RowSizeMismatchThrows) {
  ClusterTracker tracker(3);
  EXPECT_THROW(tracker.refine(std::vector<bgp::LinkId>{0, 1}),
               std::invalid_argument);
}

TEST(ClusterTracker, EmptySourceSet) {
  ClusterTracker tracker(0);
  EXPECT_EQ(tracker.cluster_count(), 0u);
  EXPECT_EQ(tracker.refine(std::vector<bgp::LinkId>{}), 0u);
  EXPECT_DOUBLE_EQ(tracker.mean_cluster_size(), 0.0);
}

TEST(Clustering, MembersConsistentWithSizes) {
  ClusterTracker tracker(5);
  tracker.refine(std::vector<bgp::LinkId>{0, 1, 0, 1, 2});
  const auto& clustering = tracker.current();
  const auto members = clustering.members();
  const auto sizes = clustering.sizes();
  ASSERT_EQ(members.size(), sizes.size());
  for (std::size_t c = 0; c < members.size(); ++c) {
    EXPECT_EQ(members[c].size(), sizes[c]);
    for (std::uint32_t s : members[c]) {
      EXPECT_EQ(clustering.cluster_of[s], c);
    }
  }
}

TEST(ClusterSources, MatrixConvenienceMatchesTracker) {
  const std::vector<std::vector<bgp::LinkId>> matrix = {
      {0, 0, 1, 1},
      {0, 1, 0, 1},
  };
  const auto clustering = cluster_sources(matrix);
  EXPECT_EQ(clustering.cluster_count, 4u);
}

TEST(ClusterTracker, ManyRandomRefinementsStayConsistent) {
  // Property: cluster ids remain dense, sizes sum to source count, and the
  // count never decreases.
  util::Rng rng{77};
  const std::size_t sources = 200;
  ClusterTracker tracker(sources);
  std::uint32_t last = 1;
  for (int round = 0; round < 50; ++round) {
    std::vector<bgp::LinkId> row(sources);
    for (auto& cell : row) {
      cell = static_cast<bgp::LinkId>(rng.next_below(4));
    }
    const std::uint32_t count = tracker.refine(row);
    EXPECT_GE(count, last);
    last = count;
    const auto sizes = tracker.current().sizes();
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0u), sources);
    for (std::uint32_t c : tracker.current().cluster_of) {
      EXPECT_LT(c, count);
    }
  }
}

}  // namespace
}  // namespace spooftrack::core
