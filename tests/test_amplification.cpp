#include "traffic/amplification.hpp"

#include <gtest/gtest.h>

namespace spooftrack::traffic {
namespace {

TEST(Amplification, TableCoversAllProtocols) {
  const auto table = amplification_table();
  EXPECT_EQ(table.size(), 6u);
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(table[i].protocol), i);
    EXPECT_GT(table[i].amplification, 1.0);
    EXPECT_GT(table[i].request_bytes, 0);
    EXPECT_NE(table[i].name, nullptr);
  }
}

TEST(Amplification, InfoMatchesTable) {
  const auto& ntp = info(AmpProtocol::kNtpMonlist);
  EXPECT_STREQ(ntp.name, "ntp-monlist");
  EXPECT_EQ(ntp.udp_port, 123);
  // NTP monlist is the classic worst case: >500x.
  EXPECT_GT(ntp.amplification, 500.0);
}

TEST(Amplification, ResponseBytesScaleWithFactor) {
  for (const auto& p : amplification_table()) {
    EXPECT_EQ(response_bytes(p.protocol),
              static_cast<std::uint32_t>(p.request_bytes * p.amplification));
    EXPECT_GT(response_bytes(p.protocol), p.request_bytes);
  }
}

class PayloadRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PayloadRoundTrip, EncodesProtocolAndSize) {
  const auto protocol = static_cast<AmpProtocol>(GetParam());
  const auto payload = make_query_payload(protocol);
  EXPECT_EQ(payload.size(), info(protocol).request_bytes);
  EXPECT_EQ(static_cast<AmpProtocol>(payload[0]), protocol);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PayloadRoundTrip,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace spooftrack::traffic
