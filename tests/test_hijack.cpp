#include "core/hijack.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace spooftrack::core {
namespace {

bgp::CatchmentMap map_of(std::vector<bgp::LinkId> links) {
  bgp::CatchmentMap map;
  map.link_of = std::move(links);
  return map;
}

TEST(Hijack, EnumeratesNonDegenerateMasks) {
  const auto config = test::announce_all(2);
  const auto scenarios =
      hijack_coverage(map_of({0, 0, 1, 1}), config);
  // 2^2 - 2 = 2 scenarios (mask 01 and 10).
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].hijacker_mask, 1u);
  EXPECT_EQ(scenarios[1].hijacker_mask, 2u);
}

TEST(Hijack, CapturedFractionMatchesCatchments) {
  const auto config = test::announce_all(2);
  const auto scenarios =
      hijack_coverage(map_of({0, 0, 0, 1, bgp::kNoCatchment}), config);
  // 4 routed ASes: 3 on link 0, 1 on link 1.
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_DOUBLE_EQ(scenarios[0].captured_fraction, 0.75);  // hijacker = l0
  EXPECT_DOUBLE_EQ(scenarios[1].captured_fraction, 0.25);  // hijacker = l1
  EXPECT_EQ(scenarios[0].hijacker_announcements, 1u);
}

TEST(Hijack, ComplementaryMasksSumToOne) {
  bgp::Configuration config;
  for (bgp::LinkId l = 0; l < 3; ++l) config.announcements.push_back({l, 0, {}, {}});
  const auto scenarios =
      hijack_coverage(map_of({0, 1, 2, 0, 1, 2, 0}), config);
  ASSERT_EQ(scenarios.size(), 6u);
  for (const auto& s : scenarios) {
    const std::uint32_t complement = 0b111u ^ s.hijacker_mask;
    for (const auto& other : scenarios) {
      if (other.hijacker_mask == complement) {
        EXPECT_NEAR(s.captured_fraction + other.captured_fraction, 1.0, 1e-9);
      }
    }
  }
}

TEST(Hijack, NoRoutedAsesYieldsEmpty) {
  const auto config = test::announce_all(2);
  EXPECT_TRUE(hijack_coverage(map_of({bgp::kNoCatchment, bgp::kNoCatchment}),
                              config)
                  .empty());
}

TEST(Hijack, RejectsDegenerateConfigs) {
  bgp::Configuration empty;
  EXPECT_THROW(hijack_coverage(map_of({0}), empty), std::invalid_argument);
  bgp::Configuration huge;
  for (bgp::LinkId l = 0; l < 21; ++l) huge.announcements.push_back({l, 0, {}, {}});
  EXPECT_THROW(hijack_coverage(map_of({0}), huge), std::invalid_argument);
}

}  // namespace
}  // namespace spooftrack::core
