#include "traffic/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace spooftrack::traffic {
namespace {

TEST(Placement, VolumesNormalised) {
  util::Rng rng{1};
  for (auto kind : {PlacementKind::kUniform, PlacementKind::kPareto8020,
                    PlacementKind::kSingleSource}) {
    const auto p = generate_placement(kind, 500, rng);
    EXPECT_EQ(p.volume.size(), 500u);
    const double total =
        std::accumulate(p.volume.begin(), p.volume.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9) << to_string(kind);
    for (double v : p.volume) EXPECT_GE(v, 0.0);
  }
}

TEST(Placement, SingleSourceHasExactlyOneActive) {
  util::Rng rng{2};
  const auto p = generate_placement(PlacementKind::kSingleSource, 100, rng);
  EXPECT_EQ(p.active.size(), 1u);
  EXPECT_DOUBLE_EQ(p.volume[p.active[0]], 1.0);
}

TEST(Placement, UniformActivatesEveryAs) {
  util::Rng rng{3};
  const auto p = generate_placement(PlacementKind::kUniform, 200, rng);
  EXPECT_EQ(p.active.size(), 200u);
}

TEST(Placement, ParetoConcentrates8020) {
  // Shape is chosen so ~80% of volume sits in the top ~20% of ASes.
  util::Rng rng{4};
  double top20_share = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    auto p = generate_placement(PlacementKind::kPareto8020, 1000, rng);
    std::sort(p.volume.begin(), p.volume.end(), std::greater<>());
    double top = 0.0;
    for (std::size_t i = 0; i < 200; ++i) top += p.volume[i];
    top20_share += top;
  }
  top20_share /= trials;
  EXPECT_NEAR(top20_share, 0.8, 0.08);
}

TEST(Placement, SingleSourcePositionVaries) {
  util::Rng rng{5};
  std::size_t first = generate_placement(PlacementKind::kSingleSource, 1000,
                                         rng)
                          .active[0];
  bool moved = false;
  for (int i = 0; i < 10; ++i) {
    if (generate_placement(PlacementKind::kSingleSource, 1000, rng)
            .active[0] != first) {
      moved = true;
    }
  }
  EXPECT_TRUE(moved);
}

TEST(Placement, EmptySourceSet) {
  util::Rng rng{6};
  const auto p = generate_placement(PlacementKind::kUniform, 0, rng);
  EXPECT_TRUE(p.volume.empty());
  EXPECT_TRUE(p.active.empty());
}

TEST(Placement, Names) {
  EXPECT_STREQ(to_string(PlacementKind::kUniform), "uniform");
  EXPECT_STREQ(to_string(PlacementKind::kPareto8020), "pareto-80/20");
  EXPECT_STREQ(to_string(PlacementKind::kSingleSource), "single-source");
}

}  // namespace
}  // namespace spooftrack::traffic
