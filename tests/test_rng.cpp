#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace spooftrack::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{7}, b{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng{42};
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng{5};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng{9};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng{11};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ParetoRespectsScaleAndTail) {
  Rng rng{13};
  int above_double = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.pareto(1.16, 1.0);
    EXPECT_GE(v, 1.0);
    if (v > 2.0) ++above_double;
  }
  // P[X > 2] = 2^-1.16 ~ 0.447.
  EXPECT_NEAR(static_cast<double>(above_double) / n, 0.447, 0.03);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng{17};
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng{19};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent{23};
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(MixFunctions, HashCombineSpreads) {
  // Different argument orders should give different hashes.
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(mix64(0), mix64(1));
}

TEST(Rng, OnePlusExponentialAtLeastOne) {
  Rng rng{29};
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(rng.one_plus_exponential(0.7), 1u);
    EXPECT_EQ(rng.one_plus_exponential(0.0), 1u);
  }
}

}  // namespace
}  // namespace spooftrack::util
