#include "bgp/announcement.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace spooftrack::bgp {
namespace {

TEST(Announcement, SeedPathPlain) {
  AnnouncementSpec spec{0, 0, {}, {}};
  EXPECT_EQ(seed_path(47065, spec), (std::vector<topology::Asn>{47065}));
}

TEST(Announcement, SeedPathPrepended) {
  AnnouncementSpec spec{0, 4, {}};
  EXPECT_EQ(seed_path(47065, spec),
            (std::vector<topology::Asn>{47065, 47065, 47065, 47065, 47065}));
}

TEST(Announcement, SeedPathPoisonSandwich) {
  AnnouncementSpec spec{0, 0, {3356, 174}};
  EXPECT_EQ(seed_path(47065, spec),
            (std::vector<topology::Asn>{47065, 3356, 47065, 174, 47065}));
}

TEST(Announcement, SeedPathPrependAndPoisonCompose) {
  AnnouncementSpec spec{0, 2, {99}};
  EXPECT_EQ(seed_path(1, spec),
            (std::vector<topology::Asn>{1, 1, 1, 99, 1}));
}

TEST(Announcement, ConfigurationQueries) {
  Configuration config;
  config.announcements.push_back({2, 0, {}, {}});
  config.announcements.push_back({0, 4, {}});
  EXPECT_TRUE(config.announces(0));
  EXPECT_TRUE(config.announces(2));
  EXPECT_FALSE(config.announces(1));
  ASSERT_NE(config.spec_for(0), nullptr);
  EXPECT_EQ(config.spec_for(0)->prepend, 4u);
  EXPECT_EQ(config.active_links(), (std::vector<LinkId>{0, 2}));
}

TEST(Announcement, OriginLinkLookup) {
  const OriginSpec origin = test::small_origin();
  ASSERT_NE(origin.link_by_provider(test::kP1), nullptr);
  EXPECT_EQ(origin.link_by_provider(test::kP1)->id, 0u);
  EXPECT_EQ(origin.link_by_provider(424242), nullptr);
}

class AnnouncementValidation : public ::testing::Test {
 protected:
  OriginSpec origin_ = test::small_origin();
};

TEST_F(AnnouncementValidation, AcceptsWellFormed) {
  Configuration config;
  config.announcements.push_back({0, 4, {}});
  config.announcements.push_back({1, 0, {111, 222}});
  EXPECT_NO_THROW(validate(config, origin_));
}

TEST_F(AnnouncementValidation, RejectsEmpty) {
  Configuration config;
  EXPECT_THROW(validate(config, origin_), std::invalid_argument);
}

TEST_F(AnnouncementValidation, RejectsUnknownLink) {
  Configuration config;
  config.announcements.push_back({7, 0, {}, {}});
  EXPECT_THROW(validate(config, origin_), std::invalid_argument);
}

TEST_F(AnnouncementValidation, RejectsDuplicateLink) {
  Configuration config;
  config.announcements.push_back({0, 0, {}, {}});
  config.announcements.push_back({0, 4, {}});
  EXPECT_THROW(validate(config, origin_), std::invalid_argument);
}

TEST_F(AnnouncementValidation, EnforcesPeeringPoisonCap) {
  Configuration config;
  config.announcements.push_back({0, 0, {1, 2, 3}});
  EXPECT_THROW(validate(config, origin_), std::invalid_argument);
}

TEST_F(AnnouncementValidation, RejectsSelfPoison) {
  Configuration config;
  config.announcements.push_back({0, 0, {origin_.asn}});
  EXPECT_THROW(validate(config, origin_), std::invalid_argument);
}

TEST_F(AnnouncementValidation, RejectsExcessivePrepend) {
  Configuration config;
  config.announcements.push_back({0, kMaxPrepend + 1, {}});
  EXPECT_THROW(validate(config, origin_), std::invalid_argument);
}

}  // namespace
}  // namespace spooftrack::bgp
