// Tests of the BGP-community (no-export) steering extension: engine
// semantics, validation, and the generator's community phase.
#include <gtest/gtest.h>

#include "bgp/catchment.hpp"
#include "bgp/engine.hpp"
#include "core/config_gen.hpp"
#include "helpers.hpp"

namespace spooftrack {
namespace {

using test::kA;
using test::kB;
using test::kD;
using test::kE;
using test::kOrigin;
using test::kP1;
using test::kP2;
using test::kT1;
using test::kT2;

class CommunityTest : public ::testing::Test {
 protected:
  CommunityTest()
      : graph_(test::small_topology()),
        policy_(graph_, test::clean_policy_config()),
        engine_(graph_, policy_),
        origin_(test::small_origin()) {}

  topology::AsId id(topology::Asn asn) const { return *graph_.id_of(asn); }

  bgp::LinkId catchment_of(const bgp::RoutingOutcome& outcome,
                           const bgp::Configuration& config,
                           topology::Asn asn) const {
    return bgp::extract_catchments(outcome, config)[id(asn)];
  }

  topology::AsGraph graph_;
  bgp::RoutingPolicy policy_;
  bgp::Engine engine_;
  bgp::OriginSpec origin_;
};

TEST_F(CommunityTest, NoExportMovesTheTargetLikePoisoning) {
  // Baseline: t2 on link 1 (via customer p2).
  bgp::Configuration config;
  config.announcements.push_back({0, 0, {}, {}});
  config.announcements.push_back({1, 0, {}, {kT2}});
  const auto outcome = engine_.run(origin_, config);
  // p2 withholds the origin route from t2: t2 reroutes via peer t1.
  EXPECT_EQ(catchment_of(outcome, config, kT2), 0u);
  // t2's customer e follows it.
  EXPECT_EQ(catchment_of(outcome, config, kE), 0u);
  // b (p2's customer, not targeted) keeps link 1.
  EXPECT_EQ(catchment_of(outcome, config, kB), 1u);
}

TEST_F(CommunityTest, NoExportDefeatsLoopPreventionExemption) {
  // The decisive advantage over poisoning: it works even when the target
  // ignores poisoned paths.
  bgp::AsPolicyFlags flags;
  flags.ignores_poison = true;
  policy_.override_flags(id(kT2), flags);

  // Poisoning fails...
  {
    bgp::Configuration config;
    config.announcements.push_back({0, 0, {}, {}});
    config.announcements.push_back({1, 0, {kT2}, {}});
    const auto outcome = engine_.run(origin_, config);
    EXPECT_EQ(catchment_of(outcome, config, kT2), 1u);
  }
  // ...no-export succeeds.
  {
    bgp::Configuration config;
    config.announcements.push_back({0, 0, {}, {}});
    config.announcements.push_back({1, 0, {}, {kT2}});
    const auto outcome = engine_.run(origin_, config);
    EXPECT_EQ(catchment_of(outcome, config, kT2), 0u);
  }
}

TEST_F(CommunityTest, NoExportLeavesPathUnpolluted) {
  // Poisoning inflates the seed path; the community variant does not, so
  // downstream length comparisons are unaffected.
  bgp::Configuration config;
  config.announcements.push_back({0, 0, {}, {}});
  config.announcements.push_back({1, 0, {}, {kT2}});
  const auto outcome = engine_.run(origin_, config);
  EXPECT_EQ(outcome.path_of(id(kP2)), (std::vector<topology::Asn>{kOrigin}));
}

TEST_F(CommunityTest, OnlySeedDescendedRoutesAreWithheld) {
  // Announce only link 0: p2's best route does NOT descend from its own
  // (inactive) announcement, so a no-export on link 1 is irrelevant and
  // everything still reaches the prefix.
  bgp::Configuration config;
  config.announcements.push_back({0, 0, {}, {}});
  const auto outcome = engine_.run(origin_, config);
  const auto map = bgp::extract_catchments(outcome, config);
  EXPECT_EQ(map.routed_count(), graph_.size() - 1);
}

TEST_F(CommunityTest, SeedBestRouteIsWithheldFromBlockedReceivers) {
  // p1's best route IS its own seed (customer route from the origin): the
  // no-export filter applies. a is single-homed under p1 and ends up with
  // no route at all; the multihomed d falls back to link 1 via p2.
  bgp::Configuration config;
  config.announcements.push_back({0, 0, {}, {kA, kD}});
  config.announcements.push_back({1, 0, {}, {}});
  const auto outcome = engine_.run(origin_, config);

  EXPECT_EQ(outcome.path_of(id(kP1)),
            (std::vector<topology::Asn>{kOrigin}));  // p1 keeps its seed
  EXPECT_FALSE(outcome.best[id(kA)].valid());
  EXPECT_EQ(catchment_of(outcome, config, kA), bgp::kNoCatchment);
  ASSERT_TRUE(outcome.best[id(kD)].valid());
  EXPECT_EQ(catchment_of(outcome, config, kD), 1u);
}

TEST_F(CommunityTest, FilterDoesNotApplyWhenBestRouteIsAnotherAnnouncement) {
  // Poisoning p1 on its own link makes p1 reject its seed (its ASN is in
  // the path), so p1's best route carries link 1's announcement instead.
  // Its seed's no-export list must NOT withhold that different-announcement
  // route from a.
  bgp::Configuration config;
  config.announcements.push_back({0, 0, {kP1}, {kA}});
  config.announcements.push_back({1, 0, {}, {}});
  const auto outcome = engine_.run(origin_, config);

  // p1 is seeded on link 0 but holds link 1's announcement via its
  // provider t1.
  ASSERT_TRUE(outcome.best[id(kP1)].valid());
  EXPECT_EQ(outcome.best[id(kP1)].ann, 1u);
  EXPECT_EQ(outcome.best[id(kP1)].learned_from, topology::Rel::kProvider);

  // a (on the announcement-0 blocked list) still hears p1's route.
  ASSERT_TRUE(outcome.best[id(kA)].valid());
  EXPECT_EQ(outcome.best[id(kA)].ann, 1u);
  EXPECT_EQ(catchment_of(outcome, config, kA), 1u);
}

TEST_F(CommunityTest, ValidationCapsAndSelfTargets) {
  bgp::Configuration config;
  bgp::AnnouncementSpec spec{0, 0, {}, {}};
  for (topology::Asn asn = 1; asn <= bgp::kMaxNoExportPerAnnouncement + 1;
       ++asn) {
    spec.no_export_to.push_back(asn);
  }
  config.announcements.push_back(spec);
  EXPECT_THROW(bgp::validate(config, origin_), std::invalid_argument);

  bgp::Configuration self;
  self.announcements.push_back({0, 0, {}, {origin_.asn}});
  EXPECT_THROW(bgp::validate(self, origin_), std::invalid_argument);
}

TEST_F(CommunityTest, GeneratorCommunityPhase) {
  core::GeneratorOptions options;
  options.max_removals = 1;
  options.max_community_configs = 4;
  const core::ConfigGenerator gen(origin_, options);
  const auto configs = gen.community_phase(graph_);
  ASSERT_EQ(configs.size(), 4u);
  for (const auto& config : configs) {
    EXPECT_EQ(config.announcements.size(), 2u);
    std::size_t targeted = 0;
    for (const auto& spec : config.announcements) {
      targeted += spec.no_export_to.size();
      EXPECT_TRUE(spec.poisoned.empty());
    }
    EXPECT_EQ(targeted, 1u);
    EXPECT_NO_THROW(bgp::validate(config, origin_));
  }
  // The phase is disabled by default.
  core::GeneratorOptions defaults;
  defaults.max_removals = 1;
  EXPECT_TRUE(core::ConfigGenerator(origin_, defaults)
                  .community_phase(graph_)
                  .empty());
}

TEST_F(CommunityTest, FullPlanIncludesCommunitiesWhenEnabled) {
  core::GeneratorOptions options;
  options.max_removals = 1;
  options.max_poison_configs = 2;
  options.max_community_configs = 2;
  const core::ConfigGenerator gen(origin_, options);
  const auto plan = gen.full_plan(graph_);
  // 3 location + 4 prepend + 2 poison + 2 community.
  EXPECT_EQ(plan.size(), 11u);
}

}  // namespace
}  // namespace spooftrack
