#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace spooftrack::util {
namespace {

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(mean_u32({}), 0.0);
}

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_u32({2, 4}), 3.0);
}

TEST(Stats, PercentileNearestRank) {
  std::vector<double> v{15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 5), 15);
  EXPECT_DOUBLE_EQ(percentile(v, 30), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 40), 20);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 35);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 15);
}

TEST(Stats, PercentileClampsQuantile) {
  std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, -10), 1);
  EXPECT_DOUBLE_EQ(percentile(v, 500), 3);
  EXPECT_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, CdfReachesOne) {
  const auto points = cdf({1, 1, 2, 3});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].x, 1);
  EXPECT_DOUBLE_EQ(points[0].y, 0.5);
  EXPECT_DOUBLE_EQ(points[2].y, 1.0);
}

TEST(Stats, CcdfStartsAtOne) {
  const auto points = ccdf({1, 1, 2, 3});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].x, 1);
  EXPECT_DOUBLE_EQ(points[0].y, 1.0);   // P[X >= 1]
  EXPECT_DOUBLE_EQ(points[1].y, 0.5);   // P[X >= 2]
  EXPECT_DOUBLE_EQ(points[2].y, 0.25);  // P[X >= 3]
}

TEST(Stats, EmptyDistributions) {
  EXPECT_TRUE(cdf({}).empty());
  EXPECT_TRUE(ccdf({}).empty());
}

TEST(Stats, AccumulatorTracksMinMaxMean) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  acc.add(3);
  acc.add(-1);
  acc.add(4);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), -1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 6.0);
}

TEST(Stats, HistogramCumulativeAndComplementary) {
  Histogram h;
  h.add(1, 3);
  h.add(2);
  h.add(5, 2);
  h.add(1);  // merges with the earlier bucket
  EXPECT_EQ(h.total(), 7u);
  EXPECT_DOUBLE_EQ(h.cumulative_at(1), 4.0 / 7.0);
  EXPECT_DOUBLE_EQ(h.cumulative_at(4), 5.0 / 7.0);
  EXPECT_DOUBLE_EQ(h.complementary_at(2), 3.0 / 7.0);
  EXPECT_DOUBLE_EQ(h.complementary_at(6), 0.0);
  EXPECT_EQ(h.values(), (std::vector<std::uint64_t>{1, 2, 5}));
}

TEST(Stats, HistogramEmpty) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.cumulative_at(10), 0.0);
  EXPECT_EQ(h.complementary_at(0), 0.0);
}

}  // namespace
}  // namespace spooftrack::util
