#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace spooftrack::util {
namespace {

FlagSet make_flags() {
  FlagSet flags;
  flags.define("seed", "random seed", "42")
      .define("name", "a string", "default")
      .define("rate", "a double", "1.5")
      .define_switch("verbose", "more output");
  return flags;
}

TEST(Flags, DefaultsApplyWithoutArguments) {
  FlagSet flags = make_flags();
  ASSERT_TRUE(flags.parse({}));
  EXPECT_EQ(flags.get("seed"), "42");
  EXPECT_EQ(flags.get_u64("seed"), 42u);
  EXPECT_EQ(flags.get("name"), "default");
  EXPECT_FALSE(flags.get_switch("verbose"));
  EXPECT_DOUBLE_EQ(*flags.get_double("rate"), 1.5);
}

TEST(Flags, ParsesValuesAndSwitches) {
  FlagSet flags = make_flags();
  ASSERT_TRUE(flags.parse({"--seed=7", "--verbose", "--name=abc"}));
  EXPECT_EQ(flags.get_u64("seed"), 7u);
  EXPECT_TRUE(flags.get_switch("verbose"));
  EXPECT_EQ(flags.get("name"), "abc");
}

TEST(Flags, CollectsPositionals) {
  FlagSet flags = make_flags();
  ASSERT_TRUE(flags.parse({"input.txt", "--seed=1", "more"}));
  EXPECT_EQ(flags.positionals(),
            (std::vector<std::string>{"input.txt", "more"}));
}

TEST(Flags, RejectsUnknownFlag) {
  FlagSet flags = make_flags();
  EXPECT_FALSE(flags.parse({"--nope=1"}));
  EXPECT_NE(flags.error().find("unknown flag"), std::string::npos);
}

TEST(Flags, RejectsValuelessFlagAndValuedSwitch) {
  FlagSet flags = make_flags();
  EXPECT_FALSE(flags.parse({"--seed"}));
  EXPECT_NE(flags.error().find("needs a value"), std::string::npos);
  FlagSet again = make_flags();
  EXPECT_FALSE(again.parse({"--verbose=yes"}));
  EXPECT_NE(again.error().find("takes no value"), std::string::npos);
}

TEST(Flags, NumericParsingIsStrict) {
  FlagSet flags = make_flags();
  ASSERT_TRUE(flags.parse({"--name=12x", "--rate=oops"}));
  EXPECT_FALSE(flags.get_u64("name").has_value());
  EXPECT_FALSE(flags.get_double("rate").has_value());
  EXPECT_FALSE(flags.get_u64("unknown-flag").has_value());
}

TEST(Flags, EmptyValueAllowedForStrings) {
  FlagSet flags = make_flags();
  ASSERT_TRUE(flags.parse({"--name="}));
  EXPECT_EQ(flags.get("name"), "");
}

TEST(Flags, ArgcArgvEntrypoint) {
  FlagSet flags = make_flags();
  const char* argv[] = {"prog", "--seed=9", "pos"};
  ASSERT_TRUE(flags.parse(3, argv));
  EXPECT_EQ(flags.get_u64("seed"), 9u);
  EXPECT_EQ(flags.positionals().size(), 1u);
}

TEST(Flags, UsageListsAllFlagsInOrder) {
  const FlagSet flags = make_flags();
  const std::string usage = flags.usage();
  const auto seed_pos = usage.find("--seed");
  const auto verbose_pos = usage.find("--verbose");
  EXPECT_NE(seed_pos, std::string::npos);
  EXPECT_NE(verbose_pos, std::string::npos);
  EXPECT_LT(seed_pos, verbose_pos);
  EXPECT_NE(usage.find("random seed"), std::string::npos);
}

TEST(Flags, RejectsDuplicateFlagWithinOneParse) {
  FlagSet flags = make_flags();
  EXPECT_FALSE(flags.parse({"--seed=1", "--seed=2"}));
  EXPECT_NE(flags.error().find("duplicate flag"), std::string::npos);
  FlagSet switches = make_flags();
  EXPECT_FALSE(switches.parse({"--verbose", "--verbose"}));
  EXPECT_NE(switches.error().find("duplicate flag"), std::string::npos);
}

TEST(Flags, ReparseIsIdempotentNotCumulative) {
  // `set` state is per-parse: the same flag appearing in two *separate*
  // parses is not a duplicate, and switch state from an earlier parse does
  // not leak into the next.
  FlagSet flags = make_flags();
  ASSERT_TRUE(flags.parse({"--seed=1", "--verbose"}));
  EXPECT_TRUE(flags.get_switch("verbose"));
  ASSERT_TRUE(flags.parse({"--seed=2"}));
  EXPECT_EQ(flags.get_u64("seed"), 2u);
  EXPECT_FALSE(flags.get_switch("verbose"));
}

TEST(Flags, RedefinitionUpdatesInPlace) {
  FlagSet flags;
  flags.define("x", "first", "1");
  flags.define("x", "second", "2");
  ASSERT_TRUE(flags.parse({}));
  EXPECT_EQ(flags.get("x"), "2");
  // Still listed once.
  const std::string usage = flags.usage();
  EXPECT_EQ(usage.find("--x"), usage.rfind("--x"));
}

}  // namespace
}  // namespace spooftrack::util
