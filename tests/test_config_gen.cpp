#include "core/config_gen.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hpp"
#include "helpers.hpp"
#include "topology/synth.hpp"

namespace spooftrack::core {
namespace {

bgp::OriginSpec seven_link_origin() {
  bgp::OriginSpec origin;
  origin.asn = kPeeringAsn;
  for (bgp::LinkId id = 0; id < 7; ++id) {
    origin.links.push_back({id, "pop", 1000 + id});
  }
  return origin;
}

TEST(Combinations, EnumeratesLexicographically) {
  const auto combos = combinations(4, 2);
  ASSERT_EQ(combos.size(), 6u);
  EXPECT_EQ(combos.front(), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(combos.back(), (std::vector<std::uint32_t>{2, 3}));
}

TEST(Combinations, EdgeCases) {
  EXPECT_EQ(combinations(3, 0).size(), 1u);  // the empty subset
  EXPECT_EQ(combinations(3, 3).size(), 1u);
  EXPECT_TRUE(combinations(2, 3).empty());
}

TEST(ConfigGen, LocationPhaseMatchesPaperCount) {
  // Paper: sum_{x=0..3} C(7, 7-x) = 64 configurations.
  const ConfigGenerator gen(seven_link_origin());
  const auto configs = gen.location_phase();
  EXPECT_EQ(configs.size(), 64u);
  EXPECT_EQ(ConfigGenerator::location_phase_size(7, 3), 64u);

  // First configuration announces everywhere.
  EXPECT_EQ(configs.front().announcements.size(), 7u);
  // Sizes are non-increasing (decreasing size order).
  for (std::size_t i = 1; i < configs.size(); ++i) {
    EXPECT_GE(configs[i - 1].announcements.size(),
              configs[i].announcements.size());
  }
  // Smallest subsets have 7 - 3 = 4 links.
  EXPECT_EQ(configs.back().announcements.size(), 4u);
  // All distinct.
  std::set<std::vector<bgp::LinkId>> seen;
  for (const auto& config : configs) {
    EXPECT_TRUE(seen.insert(config.active_links()).second);
  }
}

TEST(ConfigGen, PrependPhaseMatchesPaperCount) {
  // Paper: sum_{x=0..3} (7-x) C(7, 7-x) = 294 extra configurations.
  const ConfigGenerator gen(seven_link_origin());
  const auto bases = gen.location_phase();
  const auto prepends = gen.prepend_phase(bases);
  EXPECT_EQ(prepends.size(), 294u);
  EXPECT_EQ(ConfigGenerator::location_and_prepend_size(7, 3), 358u);

  for (const auto& config : prepends) {
    std::size_t prepended = 0;
    for (const auto& spec : config.announcements) {
      if (spec.prepend > 0) {
        ++prepended;
        EXPECT_EQ(spec.prepend, 4u);  // the paper's prepend depth
      }
      EXPECT_TRUE(spec.poisoned.empty());
    }
    EXPECT_EQ(prepended, 1u);  // single-link prepend sets
  }
}

TEST(ConfigGen, SmallerFootprintFormulas) {
  // Paper §V-B: 6 locations/2 removals -> 118; 5 locations/1 removal -> 31.
  EXPECT_EQ(ConfigGenerator::location_and_prepend_size(6, 2), 118u);
  EXPECT_EQ(ConfigGenerator::location_and_prepend_size(5, 1), 31u);
}

TEST(ConfigGen, PrependSubsetsGrowInSize) {
  GeneratorOptions options;
  options.max_removals = 1;
  options.max_prepend_set = 2;
  bgp::OriginSpec origin;
  origin.asn = kPeeringAsn;
  for (bgp::LinkId id = 0; id < 3; ++id) {
    origin.links.push_back({id, "pop", 1000 + id});
  }
  const ConfigGenerator gen(origin, options);
  std::vector<bgp::Configuration> base;
  base.push_back(test::announce_all(3));
  const auto prepends = gen.prepend_phase(base);
  // C(3,1) + C(3,2) = 6 configurations, singles first.
  ASSERT_EQ(prepends.size(), 6u);
  auto prepended_count = [](const bgp::Configuration& c) {
    std::size_t n = 0;
    for (const auto& spec : c.announcements) n += spec.prepend > 0;
    return n;
  };
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(prepended_count(prepends[i]), 1u);
  for (std::size_t i = 3; i < 6; ++i) EXPECT_EQ(prepended_count(prepends[i]), 2u);
}

class PoisonPhaseTest : public ::testing::Test {
 protected:
  PoisonPhaseTest() : graph_(test::small_topology()) {}
  topology::AsGraph graph_;
};

TEST_F(PoisonPhaseTest, TargetsProviderNeighbors) {
  const ConfigGenerator gen(test::small_origin(), GeneratorOptions{1, 1, 4, 347});
  const auto configs = gen.poison_phase(graph_);
  // p1's neighbors: t1, a, d, origin -> targets t1, a, d (origin excluded).
  // p2's neighbors: t2, b, d, origin -> targets t2, b, d.
  EXPECT_EQ(configs.size(), 6u);
  for (const auto& config : configs) {
    // Announce from all links, poison exactly one AS on one link.
    EXPECT_EQ(config.announcements.size(), 2u);
    std::size_t poisoned = 0;
    for (const auto& spec : config.announcements) {
      poisoned += spec.poisoned.size();
      EXPECT_LE(spec.poisoned.size(), 1u);
    }
    EXPECT_EQ(poisoned, 1u);
  }
}

TEST_F(PoisonPhaseTest, CapBalancesAcrossLinks) {
  GeneratorOptions options;
  options.max_removals = 1;
  options.max_poison_configs = 2;
  const ConfigGenerator gen(test::small_origin(), options);
  const auto configs = gen.poison_phase(graph_);
  ASSERT_EQ(configs.size(), 2u);
  // Round-robin: one poison on link 0, one on link 1.
  std::set<bgp::LinkId> links;
  for (const auto& config : configs) {
    for (const auto& spec : config.announcements) {
      if (!spec.poisoned.empty()) links.insert(spec.link);
    }
  }
  EXPECT_EQ(links.size(), 2u);
}

TEST_F(PoisonPhaseTest, NeverPoisonsOriginOrProviders) {
  const ConfigGenerator gen(test::small_origin(), GeneratorOptions{1, 1, 4, 347});
  for (const auto& config : gen.poison_phase(graph_)) {
    for (const auto& spec : config.announcements) {
      for (topology::Asn poisoned : spec.poisoned) {
        EXPECT_NE(poisoned, test::kOrigin);
        EXPECT_NE(poisoned, test::kP1);
        EXPECT_NE(poisoned, test::kP2);
      }
    }
  }
}

TEST(ConfigGen, FullPlanConcatenatesPhases) {
  const topology::AsGraph graph = test::small_topology();
  const ConfigGenerator gen(test::small_origin(),
                            GeneratorOptions{1, 1, 4, 347});
  const auto plan = gen.full_plan(graph);
  // 2 links, 1 removal: C(2,2)+C(2,1) = 3 location configs;
  // prepends: 2*1 + 1*2 = 4; poison: 6. Total 13.
  EXPECT_EQ(plan.size(), 3u + 4u + 6u);
  // Every generated configuration validates.
  for (const auto& config : plan) {
    EXPECT_NO_THROW(bgp::validate(config, test::small_origin()));
  }
}

TEST(ConfigGen, RejectsDegenerateOptions) {
  EXPECT_THROW(ConfigGenerator(bgp::OriginSpec{}, {}), std::invalid_argument);
  GeneratorOptions options;
  options.max_removals = 2;
  EXPECT_THROW(ConfigGenerator(test::small_origin(), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace spooftrack::core
