#include "traffic/spoofer.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace spooftrack::traffic {
namespace {

const netcore::Ipv4Addr kVictim{203, 0, 113, 50};

TEST(Spoofer, FlowsFollowVolumes) {
  SpoofedTrafficGenerator gen(1);
  const std::vector<topology::AsId> sources{0, 1, 2};
  const std::vector<double> volume{0.5, 0.0, 0.5};
  const auto flows = gen.flows(sources, volume, kVictim,
                               AmpProtocol::kDnsAny, 1000.0);
  ASSERT_EQ(flows.size(), 2u);  // zero-volume source skipped
  EXPECT_EQ(flows[0].source_as, 0u);
  EXPECT_DOUBLE_EQ(flows[0].packets_per_second, 500.0);
  EXPECT_EQ(flows[1].source_as, 2u);
}

TEST(Spoofer, PacketsCarrySpoofedSource) {
  SpoofedTrafficGenerator gen(2);
  SpoofedFlow flow;
  flow.source_as = 0;
  flow.victim = kVictim;
  flow.protocol = AmpProtocol::kNtpMonlist;
  const auto packet = gen.make_packet(flow, 4444);
  const auto ip = packet.ip();
  ASSERT_TRUE(ip.has_value());
  // The source address is the victim — that is the spoof.
  EXPECT_EQ(ip->source, kVictim);
  EXPECT_EQ(ip->destination, measure::AddressPlan::experiment_target());
  const auto udp = packet.udp();
  ASSERT_TRUE(udp.has_value());
  EXPECT_EQ(udp->destination_port, info(AmpProtocol::kNtpMonlist).udp_port);
  EXPECT_EQ(udp->source_port, 4444);
  EXPECT_EQ(packet.payload().size(),
            info(AmpProtocol::kNtpMonlist).request_bytes);
}

TEST(Spoofer, DeliveryFollowsCatchments) {
  SpoofedTrafficGenerator gen(3);
  bgp::CatchmentMap catchments;
  catchments.link_of = {0, 1, bgp::kNoCatchment};

  std::vector<SpoofedFlow> flows(3);
  for (std::size_t i = 0; i < 3; ++i) {
    flows[i].source_as = static_cast<topology::AsId>(i);
    flows[i].victim = kVictim;
    flows[i].packets_per_second = 100.0;
  }
  const auto arrivals = gen.deliver(flows, catchments, 1.0);
  ASSERT_FALSE(arrivals.empty());
  std::size_t on_link0 = 0, on_link1 = 0;
  for (const auto& a : arrivals) {
    ASSERT_NE(a.true_source, 2u) << "unrouted source delivered traffic";
    if (a.link == 0) {
      EXPECT_EQ(a.true_source, 0u);
      ++on_link0;
    } else {
      EXPECT_EQ(a.link, 1u);
      EXPECT_EQ(a.true_source, 1u);
      ++on_link1;
    }
  }
  // ~100 packets per routed flow.
  EXPECT_NEAR(static_cast<double>(on_link0), 100.0, 2.0);
  EXPECT_NEAR(static_cast<double>(on_link1), 100.0, 2.0);
}

TEST(Spoofer, ArrivalsSortedByTime) {
  SpoofedTrafficGenerator gen(4);
  bgp::CatchmentMap catchments;
  catchments.link_of = {0};
  std::vector<SpoofedFlow> flows(1);
  flows[0].source_as = 0;
  flows[0].victim = kVictim;
  flows[0].packets_per_second = 200.0;
  const auto arrivals = gen.deliver(flows, catchments, 2.0);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LE(arrivals[i - 1].timestamp, arrivals[i].timestamp);
  }
  for (const auto& a : arrivals) {
    EXPECT_GE(a.timestamp, 0.0);
    EXPECT_LT(a.timestamp, 2.0);
  }
}

TEST(Spoofer, MaxPacketCapRespected) {
  SpoofedTrafficGenerator gen(5);
  bgp::CatchmentMap catchments;
  catchments.link_of = {0};
  std::vector<SpoofedFlow> flows(1);
  flows[0].source_as = 0;
  flows[0].victim = kVictim;
  flows[0].packets_per_second = 1e9;
  const auto arrivals = gen.deliver(flows, catchments, 10.0, 500);
  EXPECT_EQ(arrivals.size(), 500u);
}

}  // namespace
}  // namespace spooftrack::traffic
