#include "core/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"

namespace spooftrack::core {
namespace {

DeploymentArtifact sample_artifact() {
  DeploymentArtifact artifact;
  artifact.seed = 1234;
  artifact.as_count = 99;
  artifact.link_count = 3;
  artifact.mean_multi_catchment = 0.0228;
  artifact.mean_coverage = 1885.0;
  artifact.annotate("location_end", 64);
  artifact.annotate("prepend_end", 358);

  bgp::Configuration config;
  config.label = "loc {l0,l1} prep {l1}";
  config.announcements.push_back({0, 0, {}, {}});
  config.announcements.push_back({1, 4, {3356}, {64500}});
  artifact.configs.push_back(config);
  bgp::Configuration second;
  second.label = "poison";
  second.announcements.push_back({2, 0, {1299, 174}, {}});
  artifact.configs.push_back(second);

  artifact.sources = {5, 9, 61};
  artifact.source_distance = {1, 2, 7};
  ComplianceStats stats;
  stats.audited = 90;
  stats.best_relationship = 88;
  stats.both_criteria = 80;
  artifact.compliance = {stats, stats};
  artifact.matrix = measure::CatchmentMatrix{{0, 1, bgp::kNoCatchment},
                                             {2, 2, 0}};
  return artifact;
}

TEST(ArtifactIo, RoundTripsEverything) {
  const auto original = sample_artifact();
  std::stringstream buffer;
  save_artifact(original, buffer);
  const auto reloaded = load_artifact(buffer);
  EXPECT_EQ(reloaded, original);
}

TEST(ArtifactIo, AnnotationAccess) {
  auto artifact = sample_artifact();
  EXPECT_EQ(artifact.annotation("location_end"), 64u);
  EXPECT_EQ(artifact.annotation("missing", 7), 7u);
  artifact.annotate("location_end", 65);
  EXPECT_EQ(artifact.annotation("location_end"), 65u);
  EXPECT_EQ(artifact.annotations.size(), 2u);  // updated in place
}

TEST(ArtifactIo, RejectsGarbage) {
  std::stringstream buffer("this is not an artifact at all............");
  EXPECT_THROW(load_artifact(buffer), std::runtime_error);
}

TEST(ArtifactIo, RejectsTruncation) {
  const auto original = sample_artifact();
  std::stringstream buffer;
  save_artifact(original, buffer);
  const std::string full = buffer.str();
  // Chop at several points; every cut must throw, never crash.
  for (std::size_t cut : {8u, 20u, 60u, 100u}) {
    if (cut >= full.size()) continue;
    std::stringstream chopped(full.substr(0, cut));
    EXPECT_THROW(load_artifact(chopped), std::runtime_error) << cut;
  }
}

TEST(ArtifactIo, FuzzEveryTruncationAndByteFlip) {
  // v2's CRC32C trailer makes corruption detection exhaustive, so the test
  // can be too: every prefix truncation and every single-byte flip of a
  // serialized artifact must throw — never crash, never deserialize quietly
  // into garbage.
  const auto original = sample_artifact();
  std::stringstream buffer;
  save_artifact(original, buffer);
  const std::string full = buffer.str();
  ASSERT_GT(full.size(), 4u);

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream chopped(full.substr(0, cut));
    EXPECT_THROW(load_artifact(chopped), std::runtime_error)
        << "truncated at " << cut;
  }
  for (std::size_t at = 0; at < full.size(); ++at) {
    std::string flipped = full;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x01);
    std::stringstream corrupted(flipped);
    EXPECT_THROW(load_artifact(corrupted), std::runtime_error)
        << "flipped byte " << at;
  }
}

TEST(ArtifactIo, RejectsWrongVersion) {
  const auto original = sample_artifact();
  std::stringstream buffer;
  save_artifact(original, buffer);
  std::string bytes = buffer.str();
  bytes[8] ^= 0x01;  // flip a version bit (after the 8-byte magic)
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_artifact(corrupted), std::runtime_error);
}

TEST(ArtifactIo, FileRoundTrip) {
  const auto original = sample_artifact();
  const std::string path = "/tmp/spooftrack_io_test.artifact";
  save_artifact_file(original, path);
  const auto reloaded = load_artifact_file(path);
  EXPECT_EQ(reloaded, original);
  EXPECT_THROW(load_artifact_file("/nonexistent/nope.artifact"),
               std::runtime_error);
}

TEST(ArtifactIo, EmptyArtifactRoundTrips) {
  DeploymentArtifact empty;
  std::stringstream buffer;
  save_artifact(empty, buffer);
  const auto reloaded = load_artifact(buffer);
  EXPECT_EQ(reloaded, empty);
}

TEST(ArtifactIo, MakeArtifactFromDeployment) {
  TestbedConfig config;
  config.seed = 3;
  config.stub_count = 200;
  config.transit_count = 30;
  config.tier1_count = 4;
  config.measured_catchments = false;
  const PeeringTestbed testbed(config);
  auto plan = testbed.generator().location_phase();
  plan.resize(3);
  const auto result = testbed.deploy(plan);

  const auto artifact = make_artifact(result, config.seed,
                                      testbed.graph().size(),
                                      testbed.origin().links.size());
  EXPECT_EQ(artifact.configs.size(), 3u);
  EXPECT_EQ(artifact.matrix.size(), 3u);
  EXPECT_EQ(artifact.sources, result.sources);
  EXPECT_EQ(artifact.source_distance.size(), result.sources.size());
  EXPECT_EQ(artifact.link_count, 7u);

  // Round trip the real thing too.
  std::stringstream buffer;
  save_artifact(artifact, buffer);
  EXPECT_EQ(load_artifact(buffer), artifact);
}

}  // namespace
}  // namespace spooftrack::core
