// Fuzz-style tests of the traceroute-repair pipeline: random topologies,
// random loss/addressing artifacts, thousands of traces — the pipeline
// must never crash, and its outputs must satisfy structural guarantees
// regardless of how mangled the input is.
#include <gtest/gtest.h>

#include <unordered_set>

#include "bgp/catchment.hpp"
#include "core/experiment.hpp"
#include "measure/repair.hpp"
#include "measure/traceroute.hpp"
#include "util/rng.hpp"

namespace spooftrack::measure {
namespace {

struct FuzzParam {
  std::uint64_t seed;
  double hop_loss;
  double as_silent;
  double foreign_border;
  double ip2as_missing;
};

class RepairFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(RepairFuzz, StructuralGuaranteesUnderNoise) {
  const FuzzParam param = GetParam();

  core::TestbedConfig config;
  config.seed = param.seed;
  config.stub_count = 250;
  config.transit_count = 30;
  config.tier1_count = 4;
  config.measured_catchments = false;
  const core::PeeringTestbed testbed(config);
  const auto& graph = testbed.graph();

  const AddressPlan plan(graph);
  const IxpTable ixps(graph, 6, 0.5, param.seed ^ 0x1A);
  const Ip2AsMap ip2as = Ip2AsMap::from_plan(
      graph, plan, core::kPeeringAsn, {param.ip2as_missing, param.seed});

  TracerouteOptions traceroute_options;
  traceroute_options.hop_unresponsive_prob = param.hop_loss;
  traceroute_options.as_silent_prob = param.as_silent;
  traceroute_options.border_foreign_addr_prob = param.foreign_border;
  traceroute_options.seed = param.seed ^ 0x7E;
  const TracerouteSim tracer(graph, plan, ixps, traceroute_options);
  const PathRepair repair(graph, ip2as, ixps, core::kPeeringAsn);

  const auto announce = testbed.generator().location_phase().front();
  const auto outcome = testbed.route(announce);

  // Probe from every 3rd AS, two rounds each.
  std::vector<Traceroute> traces;
  for (topology::AsId probe = 0; probe < graph.size(); probe += 3) {
    if (probe == testbed.origin_id()) continue;
    for (std::uint64_t round = 0; round < 2; ++round) {
      traces.push_back(
          tracer.run(outcome, probe, testbed.origin_id(), round));
    }
  }

  const auto repaired = repair.repair(traces, {});
  ASSERT_EQ(repaired.size(), traces.size());

  std::unordered_set<topology::Asn> known_asns;
  for (topology::AsId id = 0; id < graph.size(); ++id) {
    known_asns.insert(graph.asn_of(id));
  }

  std::size_t complete = 0;
  for (std::size_t i = 0; i < repaired.size(); ++i) {
    const AsLevelPath& path = repaired[i];
    // Anchored at the probe AS.
    ASSERT_FALSE(path.path.empty());
    EXPECT_EQ(path.path.front(), graph.asn_of(traces[i].probe));
    // No consecutive duplicates.
    for (std::size_t h = 1; h < path.path.size(); ++h) {
      EXPECT_NE(path.path[h], path.path[h - 1]);
    }
    // Every ASN is real (no fabricated ASes from address confusion).
    for (topology::Asn asn : path.path) {
      EXPECT_TRUE(known_asns.contains(asn)) << asn;
    }
    // complete <=> ends at the origin ASN.
    EXPECT_EQ(path.complete, path.path.back() == core::kPeeringAsn);
    complete += path.complete;
    // The origin never appears in the middle of a path.
    for (std::size_t h = 0; h + 1 < path.path.size(); ++h) {
      EXPECT_NE(path.path[h], core::kPeeringAsn);
    }
  }

  // Even under heavy noise a healthy fraction of traces completes
  // (losses are transient and repair recovers interior gaps).
  EXPECT_GT(static_cast<double>(complete) /
                static_cast<double>(repaired.size()),
            param.hop_loss >= 0.3 ? 0.2 : 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    NoiseGrid, RepairFuzz,
    ::testing::Values(FuzzParam{1, 0.00, 0.00, 0.0, 0.00},
                      FuzzParam{2, 0.05, 0.02, 0.35, 0.03},
                      FuzzParam{3, 0.15, 0.05, 0.50, 0.10},
                      FuzzParam{4, 0.30, 0.10, 0.80, 0.25},
                      FuzzParam{5, 0.50, 0.20, 1.00, 0.50}));

topology::AsGraph tiny_graph() {
  topology::AsGraph g;
  g.add_p2c(100, 1);
  g.add_p2c(100, core::kPeeringAsn);
  g.add_p2c(200, 100);
  g.freeze();
  return g;
}

TEST(RepairFuzzExtra, AdversarialHandCraftedTraces) {
  // Hand-mangled traces: all-silent, alternating loss, single hop, only
  // the destination, garbage addresses.
  const auto graph = tiny_graph();
  const AddressPlan plan(graph);
  const IxpTable ixps(graph, 1, 0.0, 9);
  const Ip2AsMap ip2as =
      Ip2AsMap::from_plan(graph, plan, core::kPeeringAsn, {0.0, 1});
  const PathRepair repair(graph, ip2as, ixps, core::kPeeringAsn);

  std::vector<Traceroute> traces;
  auto add = [&](std::vector<std::optional<netcore::Ipv4Addr>> hops) {
    Traceroute t;
    t.probe = 0;
    for (auto& h : hops) t.hops.push_back({h});
    traces.push_back(std::move(t));
  };
  add({});                                          // empty
  add({std::nullopt, std::nullopt, std::nullopt});  // all silent
  add({netcore::Ipv4Addr{8, 8, 8, 8}});             // unmapped garbage
  add({AddressPlan::experiment_target()});          // destination only
  add({std::nullopt, AddressPlan::experiment_target()});
  add({plan.router_address(1, 0), std::nullopt, std::nullopt,
       plan.router_address(1, 1)});  // gap bridged by same AS

  const auto repaired = repair.repair(traces, {});
  ASSERT_EQ(repaired.size(), traces.size());
  for (const auto& path : repaired) {
    ASSERT_FALSE(path.path.empty());
    EXPECT_EQ(path.path.front(), graph.asn_of(0));
  }
  // Destination-only trace resolves to probe + origin.
  EXPECT_TRUE(repaired[3].complete);
}

}  // namespace
}  // namespace spooftrack::measure
