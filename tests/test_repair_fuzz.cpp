// Fuzz-style tests of the traceroute-repair pipeline: random topologies,
// random loss/addressing artifacts, thousands of traces — the pipeline
// must never crash, and its outputs must satisfy structural guarantees
// regardless of how mangled the input is.
#include <gtest/gtest.h>

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "bgp/catchment.hpp"
#include "core/experiment.hpp"
#include "measure/feed.hpp"
#include "measure/repair.hpp"
#include "measure/traceroute.hpp"
#include "util/rng.hpp"

namespace spooftrack::measure {
namespace {

struct FuzzParam {
  std::uint64_t seed;
  double hop_loss;
  double as_silent;
  double foreign_border;
  double ip2as_missing;
};

class RepairFuzz : public ::testing::TestWithParam<FuzzParam> {};

// The pre-optimization §IV-b repair pipeline, reimplemented verbatim with
// owned-vector indexes: the library's slice-pooled PathRepair must stay
// bit-equivalent to it on arbitrary noisy batches.
namespace legacy {

constexpr std::size_t kWindow = PathRepair::kSubstitutionWindow;

std::uint64_t pack(std::uint64_t a, std::uint64_t b) {
  return (a << 32) | (b & 0xFFFFFFFFULL);
}

template <typename T>
struct SeqEntry {
  std::vector<T> seq;
  bool conflict = false;
};

template <typename T>
void record(std::unordered_map<std::uint64_t, SeqEntry<T>>& map,
            std::uint64_t key, const std::vector<T>& interior) {
  const auto it = map.find(key);
  if (it == map.end()) {
    map.emplace(key, SeqEntry<T>{interior});
    return;
  }
  if (!it->second.conflict && it->second.seq != interior) {
    it->second.conflict = true;
  }
}

using AddrSeqMap =
    std::unordered_map<std::uint64_t, SeqEntry<netcore::Ipv4Addr>>;
using AsnSeqMap = std::unordered_map<std::uint64_t, SeqEntry<topology::Asn>>;

AddrSeqMap build_address_index(std::span<const Traceroute> traces) {
  AddrSeqMap map;
  for (const Traceroute& trace : traces) {
    const auto& hops = trace.hops;
    for (std::size_t i = 0; i < hops.size(); ++i) {
      if (!hops[i].responsive()) continue;
      std::vector<netcore::Ipv4Addr> interior;
      for (std::size_t j = i + 1; j < hops.size() && j - i <= kWindow + 1;
           ++j) {
        if (!hops[j].responsive()) break;
        record(map, pack(hops[i].address->value(), hops[j].address->value()),
               interior);
        interior.push_back(*hops[j].address);
      }
    }
  }
  return map;
}

AsnSeqMap build_feed_index(std::span<const FeedEntry> feeds,
                           topology::Asn origin_asn) {
  AsnSeqMap map;
  for (const FeedEntry& feed : feeds) {
    std::vector<topology::Asn> path;
    for (topology::Asn asn : feed.as_path) {
      if (path.empty() || path.back() != asn) path.push_back(asn);
    }
    for (std::size_t i = 0; i < path.size(); ++i) {
      std::vector<topology::Asn> interior;
      for (std::size_t j = i + 1; j < path.size() && j - i <= kWindow + 1;
           ++j) {
        if (j - i >= 2 && path[j - 1] == origin_asn) break;
        record(map, pack(path[i], path[j]), interior);
        interior.push_back(path[j]);
      }
    }
  }
  return map;
}

std::vector<TracerouteHop> substitute_unresponsive(
    const std::vector<TracerouteHop>& hops, const AddrSeqMap& index) {
  std::vector<TracerouteHop> out;
  out.reserve(hops.size());
  std::size_t i = 0;
  while (i < hops.size()) {
    if (hops[i].responsive()) {
      out.push_back(hops[i]);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < hops.size() && !hops[j].responsive()) ++j;
    const bool has_left = !out.empty() && out.back().responsive();
    const bool has_right = j < hops.size();
    bool substituted = false;
    if (has_left && has_right && j - i <= kWindow) {
      const auto it = index.find(pack(out.back().address->value(),
                                      hops[j].address->value()));
      if (it != index.end() && !it->second.conflict) {
        for (netcore::Ipv4Addr addr : it->second.seq) out.push_back({addr});
        substituted = true;
      }
    }
    if (!substituted) {
      for (std::size_t k = i; k < j; ++k) out.push_back(hops[k]);
    }
    i = j;
  }
  return out;
}

AsLevelPath finish_mapping(const topology::AsGraph& graph,
                           const Ip2AsMap& ip2as, const IxpTable& ixps,
                           topology::Asn origin_asn, topology::AsId probe,
                           const std::vector<TracerouteHop>& hops,
                           const AsnSeqMap* feed_index) {
  std::vector<std::optional<topology::Asn>> mapped;
  mapped.reserve(hops.size());
  for (const TracerouteHop& hop : hops) {
    if (!hop.responsive()) {
      mapped.push_back(std::nullopt);
      continue;
    }
    if (ixps.is_ixp_address(*hop.address)) continue;
    mapped.push_back(ip2as.lookup(*hop.address));
  }

  std::vector<topology::Asn> as_hops;
  std::size_t i = 0;
  while (i < mapped.size()) {
    if (mapped[i]) {
      as_hops.push_back(*mapped[i]);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < mapped.size() && !mapped[j]) ++j;
    const bool has_left = !as_hops.empty();
    const bool has_right = j < mapped.size();
    if (has_left && has_right) {
      const topology::Asn left = as_hops.back();
      const topology::Asn right = *mapped[j];
      if (left == right) {
        // Gap internal to one AS.
      } else if (feed_index != nullptr && j - i <= kWindow) {
        const auto it = feed_index->find(pack(left, right));
        if (it != feed_index->end() && !it->second.conflict) {
          for (topology::Asn asn : it->second.seq) as_hops.push_back(asn);
        }
      }
    }
    i = j;
  }

  AsLevelPath result;
  result.probe = probe;
  result.path.push_back(graph.asn_of(probe));
  for (topology::Asn asn : as_hops) {
    if (result.path.back() != asn) result.path.push_back(asn);
  }
  result.complete = result.path.back() == origin_asn;
  return result;
}

std::vector<AsLevelPath> repair(const topology::AsGraph& graph,
                                const Ip2AsMap& ip2as, const IxpTable& ixps,
                                topology::Asn origin_asn,
                                std::span<const Traceroute> traces,
                                std::span<const FeedEntry> feeds) {
  const AddrSeqMap address_index = build_address_index(traces);
  const AsnSeqMap feed_index = build_feed_index(feeds, origin_asn);
  std::vector<AsLevelPath> out;
  out.reserve(traces.size());
  for (const Traceroute& trace : traces) {
    const auto hops = substitute_unresponsive(trace.hops, address_index);
    out.push_back(finish_mapping(graph, ip2as, ixps, origin_asn, trace.probe,
                                 hops, &feed_index));
  }
  return out;
}

}  // namespace legacy

TEST_P(RepairFuzz, StructuralGuaranteesUnderNoise) {
  const FuzzParam param = GetParam();

  core::TestbedConfig config;
  config.seed = param.seed;
  config.stub_count = 250;
  config.transit_count = 30;
  config.tier1_count = 4;
  config.measured_catchments = false;
  const core::PeeringTestbed testbed(config);
  const auto& graph = testbed.graph();

  const AddressPlan plan(graph);
  const IxpTable ixps(graph, 6, 0.5, param.seed ^ 0x1A);
  const Ip2AsMap ip2as = Ip2AsMap::from_plan(
      graph, plan, core::kPeeringAsn, {param.ip2as_missing, param.seed});

  TracerouteOptions traceroute_options;
  traceroute_options.hop_unresponsive_prob = param.hop_loss;
  traceroute_options.as_silent_prob = param.as_silent;
  traceroute_options.border_foreign_addr_prob = param.foreign_border;
  traceroute_options.seed = param.seed ^ 0x7E;
  const TracerouteSim tracer(graph, plan, ixps, traceroute_options);
  const PathRepair repair(graph, ip2as, ixps, core::kPeeringAsn);

  const auto announce = testbed.generator().location_phase().front();
  const auto outcome = testbed.route(announce);

  // Probe from every 3rd AS, two rounds each.
  std::vector<Traceroute> traces;
  for (topology::AsId probe = 0; probe < graph.size(); probe += 3) {
    if (probe == testbed.origin_id()) continue;
    for (std::uint64_t round = 0; round < 2; ++round) {
      traces.push_back(
          tracer.run(outcome, probe, testbed.origin_id(), round));
    }
  }

  const FeedSimulator feed_sim(graph, {60, 0.6, param.seed ^ 0x5EED});
  const auto feeds = feed_sim.collect(outcome);

  const auto repaired = repair.repair(traces, feeds);
  ASSERT_EQ(repaired.size(), traces.size());

  // Bit-equivalence with the pre-optimization pipeline on the same batch.
  const auto reference = legacy::repair(graph, ip2as, ixps, core::kPeeringAsn,
                                        traces, feeds);
  ASSERT_EQ(repaired, reference);

  std::unordered_set<topology::Asn> known_asns;
  for (topology::AsId id = 0; id < graph.size(); ++id) {
    known_asns.insert(graph.asn_of(id));
  }

  std::size_t complete = 0;
  for (std::size_t i = 0; i < repaired.size(); ++i) {
    const AsLevelPath& path = repaired[i];
    // Anchored at the probe AS.
    ASSERT_FALSE(path.path.empty());
    EXPECT_EQ(path.path.front(), graph.asn_of(traces[i].probe));
    // No consecutive duplicates.
    for (std::size_t h = 1; h < path.path.size(); ++h) {
      EXPECT_NE(path.path[h], path.path[h - 1]);
    }
    // Every ASN is real (no fabricated ASes from address confusion).
    for (topology::Asn asn : path.path) {
      EXPECT_TRUE(known_asns.contains(asn)) << asn;
    }
    // complete <=> ends at the origin ASN.
    EXPECT_EQ(path.complete, path.path.back() == core::kPeeringAsn);
    complete += path.complete;
    // The origin never appears in the middle of a path.
    for (std::size_t h = 0; h + 1 < path.path.size(); ++h) {
      EXPECT_NE(path.path[h], core::kPeeringAsn);
    }
  }

  // Even under heavy noise a healthy fraction of traces completes
  // (losses are transient and repair recovers interior gaps).
  EXPECT_GT(static_cast<double>(complete) /
                static_cast<double>(repaired.size()),
            param.hop_loss >= 0.3 ? 0.2 : 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    NoiseGrid, RepairFuzz,
    ::testing::Values(FuzzParam{1, 0.00, 0.00, 0.0, 0.00},
                      FuzzParam{2, 0.05, 0.02, 0.35, 0.03},
                      FuzzParam{3, 0.15, 0.05, 0.50, 0.10},
                      FuzzParam{4, 0.30, 0.10, 0.80, 0.25},
                      FuzzParam{5, 0.50, 0.20, 1.00, 0.50}));

topology::AsGraph tiny_graph() {
  topology::AsGraph g;
  g.add_p2c(100, 1);
  g.add_p2c(100, core::kPeeringAsn);
  g.add_p2c(200, 100);
  g.freeze();
  return g;
}

TEST(RepairFuzzExtra, AdversarialHandCraftedTraces) {
  // Hand-mangled traces: all-silent, alternating loss, single hop, only
  // the destination, garbage addresses.
  const auto graph = tiny_graph();
  const AddressPlan plan(graph);
  const IxpTable ixps(graph, 1, 0.0, 9);
  const Ip2AsMap ip2as =
      Ip2AsMap::from_plan(graph, plan, core::kPeeringAsn, {0.0, 1});
  const PathRepair repair(graph, ip2as, ixps, core::kPeeringAsn);

  std::vector<Traceroute> traces;
  auto add = [&](std::vector<std::optional<netcore::Ipv4Addr>> hops) {
    Traceroute t;
    t.probe = 0;
    for (auto& h : hops) t.hops.push_back({h});
    traces.push_back(std::move(t));
  };
  add({});                                          // empty
  add({std::nullopt, std::nullopt, std::nullopt});  // all silent
  add({netcore::Ipv4Addr{8, 8, 8, 8}});             // unmapped garbage
  add({AddressPlan::experiment_target()});          // destination only
  add({std::nullopt, AddressPlan::experiment_target()});
  add({plan.router_address(1, 0), std::nullopt, std::nullopt,
       plan.router_address(1, 1)});  // gap bridged by same AS

  const auto repaired = repair.repair(traces, {});
  ASSERT_EQ(repaired.size(), traces.size());
  for (const auto& path : repaired) {
    ASSERT_FALSE(path.path.empty());
    EXPECT_EQ(path.path.front(), graph.asn_of(0));
  }
  // Destination-only trace resolves to probe + origin.
  EXPECT_TRUE(repaired[3].complete);
}

TEST(RepairWindowBoundary, ExactWindowSubstitutesOnePastNever) {
  // Property: an unresponsive run of exactly kSubstitutionWindow hops
  // between responsive anchors is substitutable from a donor trace; a run
  // of kSubstitutionWindow + 1 never is, regardless of batch content.
  constexpr std::size_t kW = PathRepair::kSubstitutionWindow;
  const auto graph = tiny_graph();
  const AddressPlan plan(graph);
  const IxpTable ixps(graph, 1, 0.0, 9);
  const Ip2AsMap ip2as =
      Ip2AsMap::from_plan(graph, plan, core::kPeeringAsn, {0.0, 1});
  const PathRepair repair(graph, ip2as, ixps, core::kPeeringAsn);

  const topology::AsId probe = *graph.id_of(200);
  const topology::AsId mid = *graph.id_of(100);
  const topology::AsId far = *graph.id_of(1);

  auto make = [&](netcore::Ipv4Addr left, netcore::Ipv4Addr right,
                  std::size_t interior, std::uint32_t base,
                  bool responsive) {
    Traceroute t;
    t.probe = probe;
    t.hops.push_back({left});
    for (std::size_t k = 0; k < interior; ++k) {
      if (responsive) {
        t.hops.push_back({plan.router_address(mid, base + k)});
      } else {
        t.hops.push_back({std::nullopt});
      }
    }
    t.hops.push_back({right});
    return t;
  };
  auto contains_mid = [&](const AsLevelPath& path) {
    for (topology::Asn asn : path.path) {
      if (asn == graph.asn_of(mid)) return true;
    }
    return false;
  };

  util::Rng rng{0xB0D1E5};
  for (int trial = 0; trial < 24; ++trial) {
    const auto left = plan.router_address(probe, rng.next_below(512));
    const auto right = plan.router_address(far, rng.next_below(512));
    const auto base = static_cast<std::uint32_t>(rng.next_below(1024));
    const std::size_t gap = kW + rng.next_below(2);  // kW or kW + 1

    const std::vector<Traceroute> batch = {
        make(left, right, gap, base, true),    // donor
        make(left, right, gap, base, false)};  // same-width gap
    const auto repaired = repair.repair(batch, {});
    ASSERT_EQ(repaired.size(), 2u);
    if (gap == kW) {
      EXPECT_TRUE(contains_mid(repaired[1])) << "trial " << trial;
      EXPECT_EQ(repaired[1].path, repaired[0].path) << "trial " << trial;
    } else {
      // One past the window: the donor pair is never indexed and the run
      // is never substituted; the sides (distinct ASes) stay unbridged.
      EXPECT_FALSE(contains_mid(repaired[1])) << "trial " << trial;
    }

    // Even with a donor interior *inside* the window, a gap one wider than
    // the window must not inherit it (the substitute-side guard).
    const std::vector<Traceroute> uneven = {
        make(left, right, kW, base, true),
        make(left, right, kW + 1, base, false)};
    const auto mismatched = repair.repair(uneven, {});
    EXPECT_FALSE(contains_mid(mismatched[1])) << "trial " << trial;
  }
}

}  // namespace
}  // namespace spooftrack::measure
