#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace spooftrack::util {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream oss;
  EXPECT_NO_THROW(t.print(oss));
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"k", "v"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"quote", "say \"hi\""});
  std::ostringstream oss;
  t.print_csv(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Formatting, FixedPrecision) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_percent(0.925, 1), "92.5%");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream oss;
  print_banner(oss, "Figure 3");
  EXPECT_NE(oss.str().find("Figure 3"), std::string::npos);
}

}  // namespace
}  // namespace spooftrack::util
