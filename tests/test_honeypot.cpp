#include "traffic/honeypot.hpp"

#include <gtest/gtest.h>

#include "measure/address_plan.hpp"
#include "traffic/spoofer.hpp"

namespace spooftrack::traffic {
namespace {

netcore::Datagram query(netcore::Ipv4Addr victim,
                        AmpProtocol protocol = AmpProtocol::kDnsAny) {
  const auto payload = make_query_payload(protocol);
  return netcore::Datagram::make_udp(
      victim, measure::AddressPlan::experiment_target(), 4242,
      info(protocol).udp_port, payload);
}

const netcore::Ipv4Addr kVictimA{203, 0, 113, 1};
const netcore::Ipv4Addr kVictimB{203, 0, 113, 2};

TEST(Honeypot, CountsPerLink) {
  AmpPotHoneypot pot(3);
  pot.receive(0, query(kVictimA), 0.0);
  pot.receive(0, query(kVictimA), 0.1);
  pot.receive(2, query(kVictimB), 0.2);
  EXPECT_EQ(pot.packets_on(0), 2u);
  EXPECT_EQ(pot.packets_on(1), 0u);
  EXPECT_EQ(pot.packets_on(2), 1u);
  EXPECT_EQ(pot.total_packets(), 3u);
  EXPECT_GT(pot.bytes_on(0), pot.bytes_on(2));
}

TEST(Honeypot, VolumeSharesSumToOne) {
  AmpPotHoneypot pot(2);
  for (int i = 0; i < 3; ++i) pot.receive(0, query(kVictimA), i * 0.01);
  pot.receive(1, query(kVictimB), 0.5);
  const auto shares = pot.volume_by_link();
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_DOUBLE_EQ(shares[0], 0.75);
  EXPECT_DOUBLE_EQ(shares[1], 0.25);
}

TEST(Honeypot, EmptyVolumeIsZero) {
  AmpPotHoneypot pot(2);
  const auto shares = pot.volume_by_link();
  EXPECT_EQ(shares, (std::vector<double>{0.0, 0.0}));
}

TEST(Honeypot, MalformedPacketsRejected) {
  AmpPotHoneypot pot(1);
  const auto bad = query(kVictimA);
  // A link id outside the honeypot's range counts as malformed input.
  pot.receive(7, bad, 0.0);
  EXPECT_EQ(pot.total_packets(), 0u);
  EXPECT_EQ(pot.malformed_packets(), 1u);
}

TEST(Honeypot, ResponseRateLimiting) {
  HoneypotOptions options;
  options.response_rate_limit_pps = 2.0;
  AmpPotHoneypot pot(1, options);
  // 100 packets in one second: at most ~2 + initial bucket responses.
  for (int i = 0; i < 100; ++i) {
    pot.receive(0, query(kVictimA), static_cast<double>(i) / 100.0);
  }
  EXPECT_LE(pot.responses_sent(), 5u);
  EXPECT_GE(pot.responses_suppressed(), 95u);
  EXPECT_GT(pot.reflection_bytes_avoided(), 0u);
}

TEST(Honeypot, AttackDetectionThreshold) {
  HoneypotOptions options;
  options.attack_min_packets = 10;
  AmpPotHoneypot pot(1, options);
  for (int i = 0; i < 15; ++i) {
    pot.receive(0, query(kVictimA), i * 0.1);
  }
  for (int i = 0; i < 3; ++i) {
    pot.receive(0, query(kVictimB), i * 0.1);  // scanner-like
  }
  const auto attacks = pot.attacks();
  ASSERT_EQ(attacks.size(), 1u);
  EXPECT_EQ(attacks[0].victim, kVictimA);
  EXPECT_EQ(attacks[0].packets, 15u);
  EXPECT_DOUBLE_EQ(attacks[0].first_seen, 0.0);
  EXPECT_DOUBLE_EQ(attacks[0].last_seen, 1.4);
}

TEST(Honeypot, OutOfOrderTimestampsMergeVictimWindow) {
  HoneypotOptions options;
  options.attack_min_packets = 1;
  AmpPotHoneypot pot(1, options);
  pot.receive(0, query(kVictimA), 5.0);
  pot.receive(0, query(kVictimA), 2.0);  // late delivery from another tap
  pot.receive(0, query(kVictimA), 9.0);
  EXPECT_EQ(pot.out_of_order_packets(), 1u);
  const auto attacks = pot.attacks();
  ASSERT_EQ(attacks.size(), 1u);
  EXPECT_EQ(attacks[0].packets, 3u);
  EXPECT_DOUBLE_EQ(attacks[0].first_seen, 2.0);
  EXPECT_DOUBLE_EQ(attacks[0].last_seen, 9.0);
}

TEST(Honeypot, OutOfOrderTimestampDoesNotRewindTokenBucket) {
  HoneypotOptions options;
  options.response_rate_limit_pps = 1.0;  // bucket starts with one token
  AmpPotHoneypot pot(1, options);
  pot.receive(0, query(kVictimA), 10.0);  // spends the token
  EXPECT_EQ(pot.responses_sent(), 1u);
  // An out-of-order packet must neither crash nor re-grant tokens by
  // rewinding the refill clock.
  pot.receive(0, query(kVictimA), 0.0);
  EXPECT_EQ(pot.responses_sent(), 1u);
  EXPECT_EQ(pot.responses_suppressed(), 1u);
  EXPECT_EQ(pot.out_of_order_packets(), 1u);
  // Time moving forward refills from the un-rewound clock as usual.
  pot.receive(0, query(kVictimA), 11.0);
  EXPECT_EQ(pot.responses_sent(), 2u);
}

TEST(Honeypot, EqualTimestampsAreNotOutOfOrder) {
  AmpPotHoneypot pot(1);
  pot.receive(0, query(kVictimA), 1.0);
  pot.receive(0, query(kVictimB), 1.0);
  EXPECT_EQ(pot.out_of_order_packets(), 0u);
}

TEST(Honeypot, AttacksSortedByVolume) {
  HoneypotOptions options;
  options.attack_min_packets = 1;
  AmpPotHoneypot pot(1, options);
  for (int i = 0; i < 5; ++i) pot.receive(0, query(kVictimA), 0.0);
  for (int i = 0; i < 9; ++i) pot.receive(0, query(kVictimB), 0.0);
  const auto attacks = pot.attacks();
  ASSERT_EQ(attacks.size(), 2u);
  EXPECT_EQ(attacks[0].victim, kVictimB);
  EXPECT_EQ(attacks[1].victim, kVictimA);
}

}  // namespace
}  // namespace spooftrack::traffic
